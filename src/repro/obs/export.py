"""Byte-deterministic trace exporters: Perfetto trace-event JSON and
OpenMetrics textfile exposition.

Two interchange formats so the pipeline's traces plug into standard
tooling without bespoke viewers:

* :func:`write_perfetto` streams telemetry records into Chrome/Perfetto
  ``trace_event`` JSON (the ``chrome://tracing`` / https://ui.perfetto.dev
  format): spans become complete (``"ph": "X"``) events on the
  deterministic clock, counters become ``"C"`` counter tracks, events and
  histogram observations become instants.  One record in, one event out —
  the writer is single-pass and never materialises the trace.
* :func:`openmetrics_text` renders a
  :class:`~repro.obs.metrics.MetricsAggregator` snapshot as a
  Prometheus/OpenMetrics textfile (node-exporter textfile-collector
  compatible): sketch series become summaries with p50/p90/p99 quantile
  samples, counters become ``_total`` counters, gauges gauges.

Both outputs are **byte-deterministic**: records carry the deterministic
``t``/``seq`` stamps, every dict is serialised with sorted keys, series
iterate in sorted order, and floats render via ``repr`` (shortest
round-trip form, hash-seed independent).  CI hashes two exports of the
same run and across ``PYTHONHASHSEED`` values and requires equality.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Optional, TextIO, Union

from repro.obs.metrics import MetricsAggregator
from repro.obs.sinks import _RecordEncoder

#: Microseconds per deterministic time unit: ``t`` is seconds for
#: sim-time spans and an emission index otherwise; either way one unit
#: maps to 1e6 trace-event microseconds so nesting stays visible.
_US_PER_T = 1e6

#: Record fields not copied into trace-event ``args`` (already encoded in
#: the event envelope).
_ENVELOPE_KEYS = frozenset({"seq", "t", "wall", "type", "name", "t0", "t1", "dt", "depth", "wall_dt"})


def _args_of(record: Mapping) -> dict:
    return {
        key: value for key, value in record.items() if key not in _ENVELOPE_KEYS
    }


def trace_event(record: Mapping) -> Optional[dict]:
    """Map one telemetry record to one trace-event dict (or ``None``).

    Spans map to complete events (``X``) spanning ``t0..t1``; counters to
    counter samples (``C``) carrying the running total; gauges likewise;
    events and histogram observations to thread-scoped instants (``i``).
    """
    kind = record.get("type")
    name = record.get("name", "?")
    if kind == "span":
        t0 = float(record.get("t0", record.get("t", 0.0)))
        t1 = float(record.get("t1", t0))
        return {
            "name": name,
            "cat": "span",
            "ph": "X",
            "ts": t0 * _US_PER_T,
            "dur": (t1 - t0) * _US_PER_T,
            "pid": 0,
            "tid": int(record.get("depth", 0)),
            "args": _args_of(record),
        }
    if kind == "counter":
        return {
            "name": name,
            "cat": "counter",
            "ph": "C",
            "ts": float(record.get("t", 0.0)) * _US_PER_T,
            "pid": 0,
            "tid": 0,
            "args": {name: record.get("total", record.get("inc", 1))},
        }
    if kind == "gauge":
        return {
            "name": name,
            "cat": "gauge",
            "ph": "C",
            "ts": float(record.get("t", 0.0)) * _US_PER_T,
            "pid": 0,
            "tid": 0,
            "args": {name: record.get("value", 0.0)},
        }
    if kind in ("event", "hist"):
        args = _args_of(record)
        if kind == "hist":
            args["value"] = record.get("value", 0.0)
        return {
            "name": name,
            "cat": kind,
            "ph": "i",
            "s": "t",
            "ts": float(record.get("t", 0.0)) * _US_PER_T,
            "pid": 0,
            "tid": 0,
            "args": args,
        }
    return None


def write_perfetto(records: Iterable[Mapping], target: Union[str, TextIO]) -> int:
    """Stream records to a ``trace_event`` JSON file; returns event count.

    Single-pass and allocation-light: each record's event is serialised
    (sorted keys, compact separators) and written immediately, so an
    Eth2-scale trace exports in bounded memory.
    """
    handle: TextIO
    if hasattr(target, "write"):
        handle = target  # type: ignore[assignment]
        owns = False
    else:
        handle = open(target, "w", encoding="utf-8")
        owns = True
    try:
        handle.write('{"displayTimeUnit": "ms", "traceEvents": [')
        written = 0
        for record in records:
            event = trace_event(record)
            if event is None:
                continue
            if written:
                handle.write(",\n ")
            else:
                handle.write("\n ")
            handle.write(
                json.dumps(event, cls=_RecordEncoder, sort_keys=True, separators=(", ", ": "))
            )
            written += 1
        handle.write("\n]}\n")
        return written
    finally:
        if owns:
            handle.close()


# ---------------------------------------------------------------------- #
# OpenMetrics / Prometheus textfile exposition
# ---------------------------------------------------------------------- #

_METRIC_SAFE = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _sanitize(name: str) -> str:
    cleaned = "".join(ch if ch in _METRIC_SAFE else "_" for ch in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    # repr() is the shortest round-trip form and hash-seed independent;
    # integers render bare so counters read naturally.
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _labels(tag: str, extra: Optional[Mapping[str, str]] = None) -> str:
    pairs = []
    if tag:
        field, _, value = tag.partition("=")
        pairs.append((field or "tag", value))
    if extra:
        pairs.extend(sorted(extra.items()))
    if not pairs:
        return ""
    body = ",".join(f'{_sanitize(k)}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


#: Snapshot kinds mapped to (metric suffix, OpenMetrics type).
_KIND_FAMILIES = {
    "span": ("span_dt", "summary"),
    "span.wall": ("span_wall_seconds", "summary"),
    "hist": ("value", "summary"),
    "field": ("value", "summary"),
    "gauge": ("gauge", "gauge"),
    "counter": ("total", "counter"),
    "event": ("records", "counter"),
}

_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def openmetrics_text(aggregator: MetricsAggregator, prefix: str = "mvcom") -> str:
    """Render the aggregator state as OpenMetrics textfile exposition.

    One metric family per (kind, metric-name) pair — e.g. the
    ``chain.pbft.round`` span series becomes
    ``mvcom_chain_pbft_round_span_dt{...}`` summary samples with
    p50/p90/p99 quantiles plus ``_sum``/``_count`` — with tagged series
    distinguished by labels.  Output is byte-deterministic: families and
    labels render in sorted order with ``repr`` floats.
    """
    snapshot = aggregator.snapshot()
    lines = []
    emitted_headers = set()
    for key in sorted(snapshot["series"]):
        kind, _, rest = key.partition("|")
        name, _, tag = rest.partition("|")
        family_suffix, om_type = _KIND_FAMILIES.get(kind, ("records", "counter"))
        family = f"{prefix}_{_sanitize(name)}_{family_suffix}"
        stats = snapshot["series"][key]
        if family not in emitted_headers:
            emitted_headers.add(family)
            lines.append(f"# TYPE {family} {om_type}")
            lines.append(f"# HELP {family} {kind} series {name} from the mvcom telemetry stream")
        labels = _labels(tag)
        if om_type == "summary":
            for quantile, stat in _QUANTILES:
                if stat in stats:
                    q_labels = _labels(tag, {"quantile": quantile})
                    lines.append(f"{family}{q_labels} {_format_value(stats[stat])}")
            if "sum" in stats:
                lines.append(f"{family}_sum{labels} {_format_value(stats['sum'])}")
            lines.append(f"{family}_count{labels} {_format_value(stats['count'])}")
        elif om_type == "gauge":
            lines.append(f"{family}{labels} {_format_value(stats.get('last', 0.0))}")
        else:  # counter
            total = stats.get("total", stats["count"])
            lines.append(f"{family}{labels} {_format_value(total)}")
    lines.append(f"# TYPE {prefix}_trace_records counter")
    lines.append(f"# HELP {prefix}_trace_records telemetry records aggregated")
    lines.append(f"{prefix}_trace_records {snapshot['records']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    aggregator: MetricsAggregator, target: Union[str, TextIO], prefix: str = "mvcom"
) -> str:
    """Write :func:`openmetrics_text` to a path or handle; returns the text."""
    text = openmetrics_text(aggregator, prefix=prefix)
    if hasattr(target, "write"):
        target.write(text)  # type: ignore[union-attr]
    else:
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
