"""Profiling hook: wrap any solver call in cProfile, emit the hotspots.

The ROADMAP's "makes a hot path measurably faster" loop needs the *where*
as well as the *how long*; this module turns one call into a
``profile.hotspots`` event inside the same JSONL stream as the rest of the
telemetry, so a single trace file carries both the event timeline and the
top-N functions by cumulative time.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Callable, List, Optional, Tuple

from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry


def hotspot_rows(profiler: cProfile.Profile, top_n: int = 10) -> List[dict]:
    """Top ``top_n`` profile entries by cumulative time, as flat dicts."""
    if top_n <= 0:
        raise ValueError("top_n must be positive")
    stats = pstats.Stats(profiler)
    entries = []
    for (filename, line, function), (
        _primitive_calls,
        total_calls,
        internal_time,
        cumulative_time,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        entries.append(
            {
                "function": f"{filename}:{line}:{function}",
                "calls": int(total_calls),
                "tottime_s": round(float(internal_time), 6),
                "cumtime_s": round(float(cumulative_time), 6),
            }
        )
    entries.sort(key=lambda row: (-row["cumtime_s"], row["function"]))
    return entries[:top_n]


def profile_call(
    fn: Callable,
    *args,
    telemetry: NullTelemetry = NULL_TELEMETRY,
    name: Optional[str] = None,
    top_n: int = 10,
    **kwargs,
) -> Tuple[object, List[dict]]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, hotspots)`` and emits one ``profile.hotspots`` event
    (target, top-N rows) into ``telemetry``.  The profiled call's return
    value is passed through untouched, so wrapping a solver never changes
    what the caller sees -- only how much it knows afterwards.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    rows = hotspot_rows(profiler, top_n=top_n)
    telemetry.event(
        "profile.hotspots",
        target=name or getattr(fn, "__qualname__", repr(fn)),
        hotspots=rows,
    )
    return result, rows
