"""Telemetry sinks: a JSONL stream and an in-memory ring buffer.

Sinks are deliberately dumb -- an ``emit(record)`` method and optional
``flush()``/``close()`` -- so the hub stays agnostic about where records
land.  The JSONL format is one JSON object per line with the reserved keys
described in :mod:`repro.obs.telemetry`; ``mvcom trace summary`` and the CI
smoke check both consume it.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Iterator, List, Optional

import numpy as np


class TraceDecodeError(ValueError):
    """Raised when a JSONL trace file contains an unparseable line."""


class _RecordEncoder(json.JSONEncoder):
    """JSON encoder tolerating numpy scalars/arrays and sets.

    Telemetry must never crash the run it observes, so anything else
    unknown falls back to ``str`` instead of raising.
    """

    def default(self, value):
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.bool_):
            return bool(value)
        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, (set, frozenset)):
            return sorted(value)
        return str(value)


class RingBufferSink:
    """Keep the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._buffer: deque = deque(maxlen=capacity)

    def emit(self, record: dict) -> None:
        """Append one record, evicting the oldest when full."""
        self._buffer.append(record)

    @property
    def records(self) -> List[dict]:
        """The buffered records, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        """Drop everything buffered so far."""
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink:
    """Stream records to a JSON-lines file (or any writable file object)."""

    def __init__(self, target) -> None:
        if hasattr(target, "write"):
            self._handle = target
            self._owns_handle = False
            self.path: Optional[str] = getattr(target, "name", None)
        else:
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True
            self.path = str(target)
        self._closed = False

    def emit(self, record: dict) -> None:
        """Write one record as a JSON line."""
        if self._closed:
            raise ValueError("emit() on a closed JsonlSink")
        self._handle.write(json.dumps(record, cls=_RecordEncoder))
        self._handle.write("\n")

    def flush(self) -> None:
        """Flush the underlying handle."""
        if not self._closed:
            self._handle.flush()

    def close(self) -> None:
        """Flush, and close the handle if this sink opened it."""
        if self._closed:
            return
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()
        self._closed = True

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def iter_jsonl(path) -> Iterator[dict]:
    """Stream a JSONL trace one record dict at a time.

    This is the bounded-memory form ``summary``/``metrics``/``diff`` build
    on: the file is never materialised as a list, so Eth2-scale traces
    (millions of records) aggregate in O(1) memory.  Blank lines are
    skipped; a malformed line raises :class:`TraceDecodeError` naming its
    line number, exactly as :func:`read_jsonl` does.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                yield json.loads(stripped)
            except json.JSONDecodeError as error:
                raise TraceDecodeError(
                    f"{path}:{line_number}: invalid JSONL record: {error}"
                ) from error


def read_jsonl(path) -> List[dict]:
    """Load a JSONL trace back into a list of record dicts.

    Thin list wrapper over :func:`iter_jsonl`; prefer the iterator form
    for anything that only needs one pass.
    """
    return list(iter_jsonl(path))
