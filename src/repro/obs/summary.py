"""Text reports over telemetry traces (``mvcom trace summary``).

Consumes the JSONL record stream (or a ring buffer's record list) and
renders the three views a scheduling run is diagnosed with: where the time
went (top spans by cumulative duration), what happened (event counts by
name), and how the search moved (the SE utility trace as a sparkline plus
its summary statistics).  Profiling hotspot events, when present, get their
own table.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.harness.report import render_table
from repro.harness.textplot import sparkline
from repro.metrics.traces import trace_statistics
from repro.obs.sinks import iter_jsonl


class _SummaryCollector:
    """Single-pass bounded-memory collectors behind the text report.

    Everything the report renders is an aggregate (per-name span totals,
    per-(type, name) counts, the se.round utility series, hotspot tables),
    so one streaming pass suffices and Eth2-scale traces never have to fit
    in memory as a record list.
    """

    def __init__(self) -> None:
        self.records = 0
        self.span_totals: Dict[str, dict] = {}
        self.counts: Dict[tuple, int] = {}
        self.utility: List[float] = []
        self.hotspots: List[dict] = []

    def add(self, record: dict) -> None:
        self.records += 1
        kind = record.get("type", "?")
        name = record.get("name", "?")
        self.counts[(kind, name)] = self.counts.get((kind, name), 0) + 1
        if kind == "span":
            entry = self.span_totals.setdefault(
                name, {"span": name, "count": 0, "total_dt": 0.0, "total_wall_s": 0.0}
            )
            entry["count"] += 1
            entry["total_dt"] += float(record.get("dt", 0.0))
            entry["total_wall_s"] += float(record.get("wall_dt", 0.0))
        elif name == "se.round" and "best_utility" in record:
            self.utility.append(float(record["best_utility"]))
        elif name == "profile.hotspots":
            self.hotspots.append(record)

    def span_rows(self) -> List[dict]:
        rows = sorted(
            self.span_totals.values(), key=lambda row: (-row["total_dt"], row["span"])
        )
        for row in rows:
            row["total_dt"] = round(row["total_dt"], 6)
            row["mean_dt"] = round(row["total_dt"] / row["count"], 6)
            row["total_wall_s"] = round(row["total_wall_s"], 6)
        return rows

    def event_count_rows(self) -> List[dict]:
        return [
            {"type": kind, "name": name, "records": count}
            for (kind, name), count in sorted(
                self.counts.items(), key=lambda item: (-item[1], item[0])
            )
        ]


def utility_trace(records: Iterable[dict]) -> List[float]:
    """Best-utility series carried by the ``se.round`` trace points."""
    return [
        float(record["best_utility"])
        for record in records
        if record.get("name") == "se.round" and "best_utility" in record
    ]


def summarize_records(records: Iterable[dict], top_spans: int = 10) -> str:
    """Render the full text report from any record iterable (one pass)."""
    collector = _SummaryCollector()
    for record in records:
        collector.add(record)
    if not collector.records:
        return "empty trace: no telemetry records"
    sections: List[str] = [f"telemetry trace: {collector.records} records"]

    span_rows = collector.span_rows()
    if span_rows:
        sections.append(
            render_table(span_rows[:top_spans], title="Top spans by cumulative time")
        )

    sections.append(
        render_table(collector.event_count_rows(), title="Record counts by name")
    )

    if collector.utility:
        stats = trace_statistics(collector.utility)
        stats_rows = [{"statistic": key, "value": value} for key, value in stats.items()]
        sections.append(
            "SE utility trace: "
            + sparkline(collector.utility)
            + "\n"
            + render_table(stats_rows)
        )

    for record in collector.hotspots:
        rows = record.get("hotspots") or []
        if rows:
            sections.append(
                render_table(rows, title=f"Profile hotspots: {record.get('target', '?')}")
            )

    return "\n\n".join(sections)


def summarize_file(path, top_spans: int = 10) -> str:
    """Stream a JSONL trace from disk and render its text report."""
    return summarize_records(iter_jsonl(path), top_spans=top_spans)
