"""Text reports over telemetry traces (``mvcom trace summary``).

Consumes the JSONL record stream (or a ring buffer's record list) and
renders the three views a scheduling run is diagnosed with: where the time
went (top spans by cumulative duration), what happened (event counts by
name), and how the search moved (the SE utility trace as a sparkline plus
its summary statistics).  Profiling hotspot events, when present, get their
own table.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.harness.report import render_table
from repro.harness.textplot import sparkline
from repro.metrics.traces import trace_statistics
from repro.obs.sinks import read_jsonl


def _span_rows(records: Sequence[dict]) -> List[dict]:
    totals: Dict[str, dict] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        name = record.get("name", "?")
        entry = totals.setdefault(
            name, {"span": name, "count": 0, "total_dt": 0.0, "total_wall_s": 0.0}
        )
        entry["count"] += 1
        entry["total_dt"] += float(record.get("dt", 0.0))
        entry["total_wall_s"] += float(record.get("wall_dt", 0.0))
    rows = sorted(totals.values(), key=lambda row: (-row["total_dt"], row["span"]))
    for row in rows:
        row["total_dt"] = round(row["total_dt"], 6)
        row["mean_dt"] = round(row["total_dt"] / row["count"], 6)
        row["total_wall_s"] = round(row["total_wall_s"], 6)
    return rows


def _event_count_rows(records: Sequence[dict]) -> List[dict]:
    counts: Dict[tuple, int] = {}
    for record in records:
        key = (record.get("type", "?"), record.get("name", "?"))
        counts[key] = counts.get(key, 0) + 1
    return [
        {"type": kind, "name": name, "records": count}
        for (kind, name), count in sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    ]


def utility_trace(records: Sequence[dict]) -> List[float]:
    """Best-utility series carried by the ``se.round`` trace points."""
    return [
        float(record["best_utility"])
        for record in records
        if record.get("name") == "se.round" and "best_utility" in record
    ]


def summarize_records(records: Sequence[dict], top_spans: int = 10) -> str:
    """Render the full text report for an in-memory record list."""
    if not records:
        return "empty trace: no telemetry records"
    sections: List[str] = [f"telemetry trace: {len(records)} records"]

    span_rows = _span_rows(records)
    if span_rows:
        sections.append(
            render_table(span_rows[:top_spans], title="Top spans by cumulative time")
        )

    sections.append(render_table(_event_count_rows(records), title="Record counts by name"))

    trace = utility_trace(records)
    if trace:
        stats = trace_statistics(trace)
        stats_rows = [{"statistic": key, "value": value} for key, value in stats.items()]
        sections.append(
            "SE utility trace: " + sparkline(trace) + "\n" + render_table(stats_rows)
        )

    hotspot_sections = [
        record for record in records if record.get("name") == "profile.hotspots"
    ]
    for record in hotspot_sections:
        rows = record.get("hotspots") or []
        if rows:
            sections.append(
                render_table(rows, title=f"Profile hotspots: {record.get('target', '?')}")
            )

    return "\n\n".join(sections)


def summarize_file(path, top_spans: int = 10) -> str:
    """Load a JSONL trace from disk and render its text report."""
    return summarize_records(read_jsonl(path), top_spans=top_spans)
