"""Streaming metric aggregation over the telemetry record stream.

:mod:`repro.obs.telemetry` gives the pipeline a raw event stream;
``mvcom serve``-style steady-state operation (ROADMAP item 3), bandit
parameter control (item 5) and the eth2-scale path (the ``eth2scale``
preset drives ``2**10``-shard epochs through
:meth:`repro.chain.elastico.ElasticoSimulation.run_epoch_streaming`) all
need the *aggregated* view — solves/s, p50/p99 decision latency,
per-committee round latency — computed incrementally, because the raw
trace is either unbounded (a long-running service) or too large to hold:
at 1024 shards the reference DES emits 10^6+ per-message records per
epoch, and even the batched fastpath's one-span-per-committee stream is
unbounded across a serve loop.  This module provides that layer:

* :class:`LogHistogram` — a fixed-bin log-histogram quantile sketch
  (DDSketch-style): values land in geometrically-spaced bins so p50/p90/p99
  carry a *bounded relative error* (``relative_accuracy``, default 1%),
  sketches from different runs/shards **merge associatively** by adding bin
  counts, and everything is deterministic pure-python integer arithmetic —
  no sampling, no hashing, no numpy arrays on the hot path.
* :class:`MetricsAggregator` — consumes telemetry records one at a time
  (attach it to a hub as a sink, or feed it from
  :func:`repro.obs.sinks.iter_jsonl`) and maintains, keyed by metric name
  and tag: counters with overall + windowed rates, gauges with windowed
  means, and duration/value sketches for spans and histograms.
* :func:`diff_snapshots` — per-metric deltas between two aggregate
  snapshots with configurable regression thresholds; the engine behind
  ``mvcom trace diff`` and the CI trace-regression gate.

Determinism is load-bearing: snapshots iterate series in sorted order and
sketch state serialises as sorted ``[bin, count]`` pairs, so two runs of
the same seed produce byte-identical aggregate JSON regardless of
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Version marker for aggregate-snapshot JSON files (``mvcom trace
#: metrics --out``); ``trace diff`` accepts these interchangeably with
#: raw JSONL traces.
AGGREGATE_FORMAT = "mvcom-trace-aggregate-v1"

#: Record fields promoted to the series tag, first match wins.  ``tag``
#: carries the committee/round identity on ``chain.pbft.round`` spans,
#: ``epoch`` scopes the final-consensus stream, ``kind`` splits
#: ``se.dynamic`` into JOIN/LEAVE series.
DEFAULT_TAG_FIELDS = ("tag", "epoch", "kind")

#: Numeric event fields aggregated into derived ``field`` series
#: (``<event>.<field>``), giving the per-round aggregate context the
#: bandit controller consumes without histogramming every event payload.
DEFAULT_EVENT_FIELDS: Mapping[str, Tuple[str, ...]] = {
    "se.round": ("best_utility", "current_utility", "transitions"),
    "sim.run": ("events", "pending"),
}


class LogHistogram:
    """Mergeable fixed-bin log-histogram quantile sketch.

    Bin ``i`` covers ``(gamma**(i-1), gamma**i]`` with
    ``gamma = (1 + a) / (1 - a)`` for relative accuracy ``a``; the bin
    midpoint estimate ``2 * gamma**i / (gamma + 1)`` is then within a
    relative error of ``a`` of any value in the bin.  Zeros (and values
    below ``min_positive``) get an exact zero bucket, negatives a mirrored
    store, so the sketch is total over the reals while staying exact about
    sign.  Merging adds bin counts, hence is associative and commutative.
    """

    __slots__ = (
        "relative_accuracy",
        "_log_gamma",
        "_gamma",
        "min_positive",
        "count",
        "total",
        "minimum",
        "maximum",
        "zero_count",
        "_bins",
        "_neg_bins",
    )

    def __init__(self, relative_accuracy: float = 0.01, min_positive: float = 1e-12) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self.min_positive = min_positive
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.zero_count = 0
        self._bins: Dict[int, int] = {}
        self._neg_bins: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def _index(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _estimate(self, index: int) -> float:
        return 2.0 * self._gamma**index / (self._gamma + 1.0)

    def add(self, value: float, count: int = 1) -> None:
        """Fold ``count`` observations of ``value`` into the sketch."""
        value = float(value)
        self.count += count
        self.total += value * count
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if abs(value) < self.min_positive:
            self.zero_count += count
        elif value > 0:
            index = self._index(value)
            self._bins[index] = self._bins.get(index, 0) + count
        else:
            index = self._index(-value)
            self._neg_bins[index] = self._neg_bins.get(index, 0) + count

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` into this sketch (associative, commutative)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different accuracies: "
                f"{self.relative_accuracy} vs {other.relative_accuracy}"
            )
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.zero_count += other.zero_count
        for index, count in other._bins.items():
            self._bins[index] = self._bins.get(index, 0) + count
        for index, count in other._neg_bins.items():
            self._neg_bins[index] = self._neg_bins.get(index, 0) + count

    # ------------------------------------------------------------------ #
    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) of what was added.

        Walks negative bins from most- to least-negative, then the zero
        bucket, then positive bins — i.e. cumulative counts in value
        order.  The returned estimate is exact for the zero bucket and for
        the empirical min/max at the extremes, and within
        ``relative_accuracy`` elsewhere.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile fraction must be in [0, 1]")
        if self.count == 0:
            raise ValueError("quantile of an empty sketch")
        rank = q * (self.count - 1)
        target = math.floor(rank) + 1  # 1-based rank of the lower value
        cumulative = 0
        for index in sorted(self._neg_bins, reverse=True):
            cumulative += self._neg_bins[index]
            if cumulative >= target:
                return max(-self._estimate(index), self.minimum)
        cumulative += self.zero_count
        if cumulative >= target:
            return 0.0
        for index in sorted(self._bins):
            cumulative += self._bins[index]
            if cumulative >= target:
                estimate = self._estimate(index)
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum  # floating slack on the last bin

    def quantiles(self, fractions: Sequence[float]) -> List[float]:
        """Vector form of :meth:`quantile`."""
        return [self.quantile(q) for q in fractions]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Deterministic JSON-ready state (bins as sorted pairs)."""
        return {
            "relative_accuracy": self.relative_accuracy,
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "zero_count": self.zero_count,
            "bins": [[index, self._bins[index]] for index in sorted(self._bins)],
            "neg_bins": [[index, self._neg_bins[index]] for index in sorted(self._neg_bins)],
        }

    @classmethod
    def from_dict(cls, state: dict) -> "LogHistogram":
        """Rebuild a sketch from :meth:`to_dict` output."""
        sketch = cls(relative_accuracy=state["relative_accuracy"])
        sketch.count = int(state["count"])
        sketch.total = float(state["total"])
        if sketch.count:
            sketch.minimum = float(state["min"])
            sketch.maximum = float(state["max"])
        sketch.zero_count = int(state["zero_count"])
        sketch._bins = {int(i): int(c) for i, c in state["bins"]}
        sketch._neg_bins = {int(i): int(c) for i, c in state["neg_bins"]}
        return sketch


class _Window:
    """Fixed-capacity window with an O(1) running mean."""

    __slots__ = ("_values", "_total")

    def __init__(self, capacity: int) -> None:
        self._values: deque = deque(maxlen=capacity)
        self._total = 0.0

    def add(self, value: float) -> None:
        if len(self._values) == self._values.maxlen:
            self._total -= self._values[0]
        self._values.append(value)
        self._total += value

    @property
    def mean(self) -> Optional[float]:
        if not self._values:
            return None
        return self._total / len(self._values)


class _Series:
    """One (kind, name, tag) stream's running aggregate."""

    __slots__ = ("kind", "name", "tag", "count", "sketch", "window",
                 "first_t", "last_t", "total", "last_value")

    def __init__(self, kind: str, name: str, tag: str,
                 relative_accuracy: float, window: int) -> None:
        self.kind = kind
        self.name = name
        self.tag = tag
        self.count = 0
        self.sketch = LogHistogram(relative_accuracy) if kind in _SKETCHED_KINDS else None
        self.window = _Window(window) if self.sketch is not None else None
        self.first_t: Optional[float] = None
        self.last_t: Optional[float] = None
        self.total = 0.0  # counters: sum of increments
        self.last_value: Optional[float] = None

    @property
    def rate(self) -> Optional[float]:
        """Counter increments (or record arrivals) per unit deterministic t."""
        if self.first_t is None or self.last_t is None or self.last_t <= self.first_t:
            return None
        numerator = self.total if self.kind == "counter" else float(self.count)
        return numerator / (self.last_t - self.first_t)

    def stats(self) -> dict:
        """The snapshot row ``mvcom trace metrics``/``diff`` consume."""
        row: Dict[str, object] = {"count": self.count}
        if self.sketch is not None and self.sketch.count:
            sketch = self.sketch
            row.update(
                sum=sketch.total,
                mean=sketch.mean,
                min=sketch.minimum,
                max=sketch.maximum,
                p50=sketch.quantile(0.50),
                p90=sketch.quantile(0.90),
                p99=sketch.quantile(0.99),
            )
            window_mean = self.window.mean
            if window_mean is not None:
                row["window_mean"] = window_mean
        if self.kind == "counter":
            row["total"] = self.total
        if self.kind == "gauge" and self.last_value is not None:
            row["last"] = self.last_value
        rate = self.rate
        if rate is not None:
            row["rate"] = rate
        return row


#: Series kinds that maintain a quantile sketch + window.
_SKETCHED_KINDS = frozenset({"span", "span.wall", "hist", "gauge", "field"})


def series_key(kind: str, name: str, tag: str = "") -> str:
    """Canonical flat key: ``kind|name`` or ``kind|name|tag``."""
    return f"{kind}|{name}|{tag}" if tag else f"{kind}|{name}"


class MetricsAggregator:
    """Incrementally aggregate telemetry records into keyed metric series.

    Implements the sink protocol (``emit(record)``), so a live hub streams
    straight into it::

        aggregator = MetricsAggregator()
        telemetry = Telemetry(sinks=[JsonlSink(path), aggregator])

    or feed a stored trace without materialising it::

        aggregator = MetricsAggregator.from_jsonl("run.jsonl")

    Series are keyed by record kind, metric name, and a tag promoted from
    the record's fields (``tag_fields``, first present wins) — e.g. the
    per-committee ``chain.pbft.round`` spans split by their ``tag`` field
    and ``chain.mempool.age_s`` observations by ``epoch``.  Every tagged
    series *also* folds into the untagged parent series, so the cross-tag
    aggregate stays one lookup away.
    """

    def __init__(
        self,
        relative_accuracy: float = 0.01,
        window: int = 256,
        tag_fields: Sequence[str] = DEFAULT_TAG_FIELDS,
        event_fields: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        self.relative_accuracy = relative_accuracy
        self.window = window
        self.tag_fields = tuple(tag_fields)
        self.event_fields = dict(
            DEFAULT_EVENT_FIELDS if event_fields is None else event_fields
        )
        self.records = 0
        self._series: Dict[str, _Series] = {}
        # (type, name, tag) -> compiled record handler; the hub's stream
        # repeats a handful of shapes millions of times, so emit() pays
        # one tuple lookup + one specialised closure per record instead
        # of re-deriving keys and dispatch every time.
        self._handlers: Dict[Tuple, Callable[[dict], None]] = {}

    # ------------------------------------------------------------------ #
    def _get(self, kind: str, name: str, tag: str) -> _Series:
        key = series_key(kind, name, tag)
        series = self._series.get(key)
        if series is None:
            series = _Series(kind, name, tag, self.relative_accuracy, self.window)
            self._series[key] = series
        return series

    def _targets(self, kind: str, name: str, tag: str) -> Tuple[_Series, ...]:
        if tag:
            return (self._get(kind, name, ""), self._get(kind, name, tag))
        return (self._get(kind, name, ""),)

    def _build_handler(self, kind, name: str, tag: str) -> Callable[[dict], None]:
        """Compile the per-record work for one (type, name, tag) shape."""

        def touch(series: _Series, t) -> None:
            series.count += 1
            if t is not None:
                if series.first_t is None:
                    series.first_t = float(t)
                series.last_t = float(t)

        if kind == "span":
            spans = self._targets("span", name, tag)
            # Wall series materialise on the first wall_dt: sim-time spans
            # (record_span) never carry one, and a count-0 series would
            # pollute snapshots and diffs.
            walls: List[Tuple[_Series, ...]] = []

            def handle(record: dict) -> None:
                t = record.get("t")
                dt = float(record.get("dt", 0.0))
                for series in spans:
                    touch(series, t)
                    series.sketch.add(dt)
                    series.window.add(dt)
                wall_dt = record.get("wall_dt")
                if wall_dt is not None:
                    if not walls:
                        walls.append(self._targets("span.wall", name, tag))
                    wall_dt = float(wall_dt)
                    for series in walls[0]:
                        touch(series, t)
                        series.sketch.add(wall_dt)
                        series.window.add(wall_dt)

        elif kind in ("hist", "gauge"):
            values = self._targets(kind, name, tag)

            def handle(record: dict) -> None:
                t = record.get("t")
                value = float(record.get("value", 0.0))
                for series in values:
                    touch(series, t)
                    series.sketch.add(value)
                    series.window.add(value)
                    series.last_value = value

        elif kind == "counter":
            counters = self._targets("counter", name, tag)

            def handle(record: dict) -> None:
                t = record.get("t")
                inc = float(record.get("inc", 1.0))
                for series in counters:
                    touch(series, t)
                    series.total += inc

        else:  # event (and anything future-shaped)
            events = self._targets("event", name, tag)
            field_targets = tuple(
                (field, self._targets("field", f"{name}.{field}", tag))
                for field in self.event_fields.get(name, ())
            )

            def handle(record: dict) -> None:
                t = record.get("t")
                for series in events:
                    touch(series, t)
                for field, targets in field_targets:
                    value = record.get(field)
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        value = float(value)
                        for series in targets:
                            touch(series, t)
                            series.sketch.add(value)
                            series.window.add(value)

        return handle

    # ------------------------------------------------------------------ #
    def emit(self, record: dict) -> None:
        """Sink protocol: fold one telemetry record into the aggregate."""
        self.records += 1
        get = record.get
        kind = get("type")
        name = get("name", "?")
        tag = ""
        for field in self.tag_fields:
            value = get(field)
            if value is not None:
                tag = f"{field}={value}"
                break
        key = (kind, name, tag)
        handler = self._handlers.get(key)
        if handler is None:
            handler = self._build_handler(kind, name, tag)
            self._handlers[key] = handler
        handler(record)

    def consume(self, records: Iterable[dict]) -> "MetricsAggregator":
        """Fold an iterable of records (one pass, bounded memory)."""
        for record in records:
            self.emit(record)
        return self

    @classmethod
    def from_jsonl(cls, path, **kwargs) -> "MetricsAggregator":
        """Aggregate a stored JSONL trace without loading it whole."""
        from repro.obs.sinks import iter_jsonl

        return cls(**kwargs).consume(iter_jsonl(path))

    # ------------------------------------------------------------------ #
    def series(self, kind: str, name: str, tag: str = "") -> Optional[_Series]:
        """Look up one series; ``None`` when nothing matched it yet."""
        return self._series.get(series_key(kind, name, tag))

    def find_series(self, name: str, tag: str = "") -> List[_Series]:
        """All series for a metric name (any kind), optionally one tag."""
        return [
            series
            for key in sorted(self._series)
            for series in (self._series[key],)
            if series.name == name and (not tag or series.tag == tag)
        ]

    def snapshot(self) -> dict:
        """Deterministic aggregate view: sorted series keys -> stat rows."""
        return {
            "format": AGGREGATE_FORMAT,
            "records": self.records,
            "relative_accuracy": self.relative_accuracy,
            "series": {
                key: self._series[key].stats() for key in sorted(self._series)
            },
        }

    def write_snapshot(self, path) -> dict:
        """Write the snapshot as canonical aggregate JSON; returns it."""
        snapshot = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return snapshot


# ---------------------------------------------------------------------- #
# cross-run comparison (``mvcom trace diff``)
# ---------------------------------------------------------------------- #

#: Series name prefixes whose *values* are machine-dependent and therefore
#: excluded from regression comparison by default (their record counts
#: still gate through the untagged ``event`` series totals).
DEFAULT_DIFF_EXCLUDE = ("obs.resources", "profile.")

#: Stats compared per series, in report order.
DIFF_STATS = ("count", "total", "sum", "mean", "p50", "p90", "p99", "rate")


def load_aggregate(path) -> dict:
    """Load either an aggregate snapshot JSON or a raw JSONL trace.

    ``.jsonl`` paths stream through :class:`MetricsAggregator`; anything
    else is first tried as a single aggregate-JSON document (recognised by
    its ``format`` marker) before falling back to JSONL streaming.
    """
    text_path = str(path)
    if not text_path.endswith(".jsonl"):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError):
            document = None
        if isinstance(document, dict) and document.get("format") == AGGREGATE_FORMAT:
            return document
    return MetricsAggregator.from_jsonl(path).snapshot()


def _excluded(name: str, exclude: Sequence[str]) -> bool:
    return any(name.startswith(prefix) for prefix in exclude)


def diff_snapshots(
    baseline: dict,
    candidate: dict,
    threshold: float = 0.0,
    include_wall: bool = False,
    exclude: Sequence[str] = DEFAULT_DIFF_EXCLUDE,
) -> Tuple[List[dict], List[dict]]:
    """Per-metric deltas between two aggregate snapshots.

    Returns ``(rows, breaches)``: every compared stat as a row
    (``series``/``stat``/``baseline``/``candidate``/``delta_pct``), and the
    subset whose relative delta exceeds ``threshold`` (percent) — plus a
    breach row for any series present on only one side.  Wall-clock series
    (``span.wall``) and ``exclude``-prefixed names are skipped unless
    ``include_wall`` asks for them, so identical-seed runs on different
    machines still diff clean.
    """
    a_series: Mapping[str, dict] = baseline.get("series", {})
    b_series: Mapping[str, dict] = candidate.get("series", {})
    rows: List[dict] = []
    breaches: List[dict] = []

    def comparable(key: str) -> bool:
        kind, _, rest = key.partition("|")
        name = rest.partition("|")[0]
        if not include_wall and kind == "span.wall":
            return False
        return not _excluded(name, exclude)

    for key in sorted(set(a_series) | set(b_series)):
        if not comparable(key):
            continue
        left, right = a_series.get(key), b_series.get(key)
        if left is None or right is None:
            row = {
                "series": key,
                "stat": "presence",
                "baseline": "present" if left is not None else "missing",
                "candidate": "present" if right is not None else "missing",
                "delta_pct": math.inf,
            }
            rows.append(row)
            breaches.append(row)
            continue
        for stat in DIFF_STATS:
            if stat not in left and stat not in right:
                continue
            a_value = float(left.get(stat, 0.0))
            b_value = float(right.get(stat, 0.0))
            scale = max(abs(a_value), abs(b_value))
            delta_pct = 0.0 if scale == 0.0 else 100.0 * abs(b_value - a_value) / scale
            row = {
                "series": key,
                "stat": stat,
                "baseline": a_value,
                "candidate": b_value,
                "delta_pct": delta_pct,
            }
            rows.append(row)
            if delta_pct > threshold:
                breaches.append(row)
    return rows, breaches
