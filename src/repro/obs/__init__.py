"""``repro.obs`` -- runtime observability for the MVCom reproduction.

* :mod:`repro.obs.telemetry` -- the hub: counters, gauges, histograms and
  nested spans over injectable deterministic/wall clocks, with a no-op
  :data:`~repro.obs.telemetry.NULL_TELEMETRY` default;
* :mod:`repro.obs.sinks` -- JSONL stream + in-memory ring buffer, with
  streaming (:func:`~repro.obs.sinks.iter_jsonl`) and list
  (:func:`~repro.obs.sinks.read_jsonl`) readers;
* :mod:`repro.obs.metrics` -- streaming :class:`MetricsAggregator` over
  the record stream: counters/rates, windowed means, and mergeable
  log-histogram p50/p90/p99 sketches keyed by metric name and tag;
* :mod:`repro.obs.slo` -- declarative SLO specs (``max_p99``,
  ``max_rate``, ``monotone_budget``) evaluated online against the
  aggregator, emitting ``slo.violation`` back into the stream (imported
  lazily by consumers; not re-exported here);
* :mod:`repro.obs.export` -- byte-deterministic Perfetto ``trace_event``
  and OpenMetrics textfile exporters (imported lazily; not re-exported);
* :mod:`repro.obs.profiling` -- cProfile hook emitting top-N hotspots into
  the same stream;
* :mod:`repro.obs.summary` -- the ``mvcom trace summary`` text report
  (imported lazily by the CLI; not re-exported here to keep this package
  import-light for the instrumented hot paths).

Instrumented packages (``repro/{core,sim,chain,baselines}``) accept a
``telemetry`` parameter defaulting to ``NULL_TELEMETRY`` and never
construct hubs or sinks themselves -- lint rule MV007 enforces this, the
injectable-clock design keeps MV002 (no wall-clock) intact.
"""

from repro.obs.metrics import LogHistogram, MetricsAggregator
from repro.obs.profiling import hotspot_rows, profile_call
from repro.obs.sinks import JsonlSink, RingBufferSink, TraceDecodeError, iter_jsonl, read_jsonl
from repro.obs.telemetry import NULL_TELEMETRY, Clock, NullTelemetry, Telemetry

__all__ = [
    "Clock",
    "JsonlSink",
    "LogHistogram",
    "MetricsAggregator",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RingBufferSink",
    "Telemetry",
    "TraceDecodeError",
    "hotspot_rows",
    "iter_jsonl",
    "profile_call",
    "read_jsonl",
]
