"""``repro.obs`` -- runtime observability for the MVCom reproduction.

* :mod:`repro.obs.telemetry` -- the hub: counters, gauges, histograms and
  nested spans over injectable deterministic/wall clocks, with a no-op
  :data:`~repro.obs.telemetry.NULL_TELEMETRY` default;
* :mod:`repro.obs.sinks` -- JSONL stream + in-memory ring buffer;
* :mod:`repro.obs.profiling` -- cProfile hook emitting top-N hotspots into
  the same stream;
* :mod:`repro.obs.summary` -- the ``mvcom trace summary`` text report
  (imported lazily by the CLI; not re-exported here to keep this package
  import-light for the instrumented hot paths).

Instrumented packages (``repro/{core,sim,chain,baselines}``) accept a
``telemetry`` parameter defaulting to ``NULL_TELEMETRY`` and never
construct hubs or sinks themselves -- lint rule MV007 enforces this, the
injectable-clock design keeps MV002 (no wall-clock) intact.
"""

from repro.obs.profiling import hotspot_rows, profile_call
from repro.obs.sinks import JsonlSink, RingBufferSink, TraceDecodeError, read_jsonl
from repro.obs.telemetry import NULL_TELEMETRY, Clock, NullTelemetry, Telemetry

__all__ = [
    "Clock",
    "JsonlSink",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RingBufferSink",
    "Telemetry",
    "TraceDecodeError",
    "hotspot_rows",
    "profile_call",
    "read_jsonl",
]
