"""Experiment implementations, one per paper figure.

Every function returns a plain dict of rows/series -- the exact data the
corresponding figure plots -- so the benches, the CLI and EXPERIMENTS.md
all consume the same artifacts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines import (
    DynamicProgrammingScheduler,
    GreedyDensityScheduler,
    RandomSearchScheduler,
    Scheduler,
    SimulatedAnnealingScheduler,
    WhaleOptimizationScheduler,
)
from repro.chain.measurement import linear_growth_check, measure_two_phase_latency
from repro.chain.params import ChainParams
from repro.core.dynamics import fail_and_recover_schedule
from repro.core.failure import analyze_failure, space_sizes, tv_distance_bound
from repro.core.markov import (
    build_chain,
    detailed_balance_residual,
    empirical_mixing_time,
    is_irreducible,
    mixing_time_lower_bound,
    mixing_time_upper_bound,
)
from repro.core.problem import EpochInstance
from repro.core.se import SEConfig, StochasticExploration
from repro.data.workload import (
    WorkloadConfig,
    generate_epoch_workload,
    generate_online_workload,
)
from repro.harness.parallel import map_trials
from repro.harness.presets import PRESETS, FigurePreset
from repro.metrics.traces import align_traces, converged_value
from repro.metrics.valuable_degree import valuable_degree


# --------------------------------------------------------------------- #
# shared pieces
# --------------------------------------------------------------------- #
def _workload_config(
    preset: FigurePreset,
    seed: int,
    alpha: Optional[float] = None,
    num_committees: Optional[int] = None,
    capacity: Optional[int] = None,
) -> WorkloadConfig:
    return WorkloadConfig(
        num_committees=num_committees or preset.num_committees,
        capacity=capacity or preset.capacity,
        alpha=alpha if alpha is not None else preset.alpha,
        seed=seed,
    )


def _se_config(preset: FigurePreset, seed: int, gamma: Optional[int] = None) -> SEConfig:
    return SEConfig(
        num_threads=gamma or preset.gamma,
        max_iterations=preset.se_iterations,
        convergence_window=preset.convergence_window,
        seed=seed,
    )


def paper_baselines(seed: int) -> List[Scheduler]:
    """The paper's three baselines (Section VI-B)."""
    return [
        SimulatedAnnealingScheduler(seed=seed),
        DynamicProgrammingScheduler(seed=seed),
        WhaleOptimizationScheduler(seed=seed),
    ]


def extra_baselines(seed: int) -> List[Scheduler]:
    """Reference points beyond the paper's trio (ablation benches)."""
    return [GreedyDensityScheduler(seed=seed), RandomSearchScheduler(seed=seed)]


def run_all_algorithms(
    instance: EpochInstance,
    preset: FigurePreset,
    seed: int,
    gamma: Optional[int] = None,
    include_extras: bool = False,
) -> Dict[str, dict]:
    """Run SE + baselines on one instance; returns per-algorithm records."""
    records: Dict[str, dict] = {}
    se_result = StochasticExploration(_se_config(preset, seed, gamma)).solve(instance)
    records["SE"] = {
        "utility": se_result.best_utility,
        "count": se_result.best_count,
        "weight": se_result.best_weight,
        "trace": se_result.utility_trace,
        "valuable_degree": valuable_degree(instance, se_result.best_mask),
        "mask": se_result.best_mask,
    }
    schedulers = paper_baselines(seed) + (extra_baselines(seed) if include_extras else [])
    for scheduler in schedulers:
        result = scheduler.solve(instance, preset.baseline_iterations)
        records[scheduler.name] = {
            "utility": result.utility,
            "count": result.count,
            "weight": result.weight,
            "trace": result.utility_trace,
            "valuable_degree": valuable_degree(instance, result.mask),
            "mask": result.mask,
        }
    return records


# --------------------------------------------------------------------- #
# Fig. 2 -- two-phase latency measurement on the Elastico substrate
# --------------------------------------------------------------------- #
def run_fig02_two_phase_latency(
    preset: FigurePreset = PRESETS["fig02"],
    chain_engine: Optional[str] = None,
) -> dict:
    """Fig. 2: measure two-phase latency on the Elastico substrate.

    ``chain_engine`` picks the substrate implementation (``"des"``
    reference or the ``"fastpath"`` closed-form kernel); ``None`` keeps
    the preset's :class:`~repro.chain.params.ChainParams` default.
    """
    sizes = preset.extras["network_sizes"]
    params = ChainParams(
        num_nodes=min(sizes),
        committee_size=int(preset.extras["committee_size"]),
        seed=preset.seeds[0],
    )
    measurements = measure_two_phase_latency(
        params,
        sizes,
        epochs_per_size=int(preset.extras["epochs_per_size"]),
        chain_engine=chain_engine,
    )
    fit = linear_growth_check(measurements)
    cdf_size = int(preset.extras["cdf_network_size"])
    cdf_measurement = next((m for m in measurements if m.num_nodes == cdf_size), measurements[-1])
    return {
        "figure": "fig02",
        "rows": [
            {
                "num_nodes": m.num_nodes,
                "mean_formation_s": round(m.mean_formation, 2),
                "mean_consensus_s": round(m.mean_consensus, 2),
                "mean_two_phase_s": round(m.mean_two_phase, 2),
            }
            for m in measurements
        ],
        "linear_fit": fit,
        "cdf": {
            "num_nodes": cdf_measurement.num_nodes,
            "formation": cdf_measurement.cdf("formation"),
            "consensus": cdf_measurement.cdf("consensus"),
        },
    }


# --------------------------------------------------------------------- #
# Fig. 8 -- effect of the number of parallel execution threads
# --------------------------------------------------------------------- #
def run_fig08_parallel_threads(preset: FigurePreset = PRESETS["fig08"]) -> dict:
    """Fig. 8: SE convergence for each Gamma in the preset sweep."""
    workload = generate_epoch_workload(_workload_config(preset, preset.seeds[0]))
    traces: Dict[str, np.ndarray] = {}
    converged: Dict[str, float] = {}
    for gamma in preset.extras["gammas"]:
        result = StochasticExploration(_se_config(preset, preset.seeds[0], gamma=gamma)).solve(
            workload.instance
        )
        traces[f"Gamma={gamma}"] = result.utility_trace
        converged[f"Gamma={gamma}"] = converged_value(result.utility_trace)
    return {
        "figure": "fig08",
        "traces": align_traces(traces),
        "converged": converged,
        "instance": repr(workload.instance),
    }


# --------------------------------------------------------------------- #
# Fig. 9 -- dynamic event handling
# --------------------------------------------------------------------- #
def run_fig09_dynamic_events(
    preset_a: FigurePreset = PRESETS["fig09a"],
    preset_b: FigurePreset = PRESETS["fig09b"],
) -> dict:
    # (a) leave (failure) then rejoin.
    """Fig. 9: leave/rejoin (a) and consecutive joins (b)."""
    workload_a = generate_epoch_workload(_workload_config(preset_a, preset_a.seeds[0]))
    instance_a = workload_a.instance
    # Fail the highest-TX selected-ish committee so the dip is visible.
    victim_position = int(np.argmax(instance_a.tx_counts))
    victim_id = instance_a.shard_ids[victim_position]
    schedule_a = fail_and_recover_schedule(
        shard_id=victim_id,
        tx_count=int(instance_a.tx_counts[victim_position]),
        latency=float(instance_a.latencies[victim_position]),
        fail_at=int(preset_a.extras["fail_at"]),
        recover_at=int(preset_a.extras["recover_at"]),
    )
    result_a = StochasticExploration(_se_config(preset_a, preset_a.seeds[0])).solve(
        instance_a, schedule=schedule_a
    )

    # (b) consecutive joins.
    workload_b = generate_online_workload(
        _workload_config(preset_b, preset_b.seeds[0]),
        num_initial=int(preset_b.extras["num_initial"]),
        join_start=int(preset_b.extras["join_start"]),
        join_spacing=int(preset_b.extras["join_spacing"]),
    )
    result_b = StochasticExploration(_se_config(preset_b, preset_b.seeds[0])).solve(
        workload_b.instance, schedule=workload_b.schedule
    )
    return {
        "figure": "fig09",
        "leave_rejoin": {
            "current_trace": result_a.current_trace,
            "best_trace": result_a.utility_trace,
            "events": [(e.iteration, e.kind.value) for e in result_a.events_applied],
            "victim": victim_id,
        },
        "consecutive_joins": {
            "current_trace": result_b.current_trace,
            "best_trace": result_b.utility_trace,
            "events": [(e.iteration, e.kind.value) for e in result_b.events_applied],
        },
    }


# --------------------------------------------------------------------- #
# Fig. 10 -- Valuable Degree comparison
# --------------------------------------------------------------------- #
def _fig10_trial(preset: FigurePreset, seed: int) -> Dict[str, float]:
    """One fig10 seed: Valuable Degree per algorithm (sweep worker)."""
    workload = generate_epoch_workload(_workload_config(preset, seed))
    records = run_all_algorithms(workload.instance, preset, seed)
    return {name: record["valuable_degree"] for name, record in records.items()}


def run_fig10_valuable_degree(
    preset: FigurePreset = PRESETS["fig10"],
    parallel: bool = False,
    sweep_workers: int = 4,
) -> dict:
    """Fig. 10: Valuable Degree of SE vs the baselines."""
    trials = map_trials(
        _fig10_trial,
        [(preset, seed) for seed in preset.seeds],
        parallel=parallel,
        num_workers=sweep_workers,
    )
    per_algorithm: Dict[str, List[float]] = {}
    for trial in trials:
        for name, value in trial.items():
            per_algorithm.setdefault(name, []).append(value)
    rows = [
        {
            "algorithm": name,
            "valuable_degree_mean": round(float(np.mean(values)), 2),
            "valuable_degree_std": round(float(np.std(values)), 2),
            "trials": len(values),
        }
        for name, values in per_algorithm.items()
    ]
    rows.sort(key=lambda row: -row["valuable_degree_mean"])
    # VD scales differ wildly across epochs (the DDL draw dominates), so the
    # figure's comparisons are per-trial ratios against SE, not raw means.
    ratios_vs_se = {
        name: [value / se for value, se in zip(values, per_algorithm["SE"])]
        for name, values in per_algorithm.items()
    }
    return {
        "figure": "fig10",
        "rows": rows,
        "samples": per_algorithm,
        "mean_ratio_vs_se": {name: float(np.mean(r)) for name, r in ratios_vs_se.items()},
    }


# --------------------------------------------------------------------- #
# Fig. 11 -- varying |I_j| with a fixed set of arrived committees
# --------------------------------------------------------------------- #
def _fig11_trial(preset: FigurePreset, size: int) -> dict:
    """One fig11 committee-set size: a full convergence panel (sweep worker)."""
    per_committee = int(preset.extras["capacity_per_committee"])
    workload = generate_epoch_workload(
        _workload_config(preset, preset.seeds[0], num_committees=size, capacity=per_committee * size)
    )
    records = run_all_algorithms(workload.instance, preset, preset.seeds[0])
    return {
        "traces": align_traces({name: r["trace"] for name, r in records.items()}),
        "converged": {name: converged_value(r["trace"]) for name, r in records.items()},
        "utility": {name: r["utility"] for name, r in records.items()},
    }


def run_fig11_vary_committees(
    preset: FigurePreset = PRESETS["fig11"],
    parallel: bool = False,
    sweep_workers: int = 4,
) -> dict:
    """Fig. 11: convergence panels while varying |I_j|."""
    sizes = preset.extras["sizes"]
    trials = map_trials(
        _fig11_trial,
        [(preset, size) for size in sizes],
        parallel=parallel,
        num_workers=sweep_workers,
    )
    panels = {f"|Ij|={size}": panel for size, panel in zip(sizes, trials)}
    return {"figure": "fig11", "panels": panels}


# --------------------------------------------------------------------- #
# Fig. 12 -- varying alpha with a fixed set of arrived committees
# --------------------------------------------------------------------- #
def _fig12_trial(preset: FigurePreset, alpha: float) -> dict:
    """One fig12 alpha: a full convergence panel (sweep worker)."""
    workload = generate_epoch_workload(_workload_config(preset, preset.seeds[0], alpha=alpha))
    records = run_all_algorithms(workload.instance, preset, preset.seeds[0])
    return {
        "traces": align_traces({name: r["trace"] for name, r in records.items()}),
        "converged": {name: converged_value(r["trace"]) for name, r in records.items()},
        "utility": {name: r["utility"] for name, r in records.items()},
    }


def run_fig12_vary_alpha(
    preset: FigurePreset = PRESETS["fig12"],
    parallel: bool = False,
    sweep_workers: int = 4,
) -> dict:
    """Fig. 12: convergence panels while varying alpha."""
    alphas = preset.extras["alphas"]
    trials = map_trials(
        _fig12_trial,
        [(preset, alpha) for alpha in alphas],
        parallel=parallel,
        num_workers=sweep_workers,
    )
    panels = {f"alpha={alpha}": panel for alpha, panel in zip(alphas, trials)}
    return {"figure": "fig12", "panels": panels}


# --------------------------------------------------------------------- #
# Fig. 13 -- distribution of converged utilities
# --------------------------------------------------------------------- #
def _fig13_trial(preset: FigurePreset, alpha: float, seed: int) -> Dict[str, float]:
    """One fig13 (alpha, seed) trial: converged utility per algorithm.

    The workload is regenerated inside the worker from ``preset.seeds[0]``
    -- it is a pure function of the config, so every trial of one alpha
    sees the identical fixed committee set and only the algorithm seed
    varies, exactly as in the serial loop.
    """
    workload = generate_epoch_workload(_workload_config(preset, preset.seeds[0], alpha=alpha))
    records = run_all_algorithms(workload.instance, preset, seed)
    return {name: record["utility"] for name, record in records.items()}


def run_fig13_utility_distribution(
    preset: FigurePreset = PRESETS["fig13"],
    parallel: bool = False,
    sweep_workers: int = 4,
) -> dict:
    """Fig. 13 fixes the committee set ("with a fixed set of committees")
    and varies only the algorithms' randomness across trials."""
    alphas = preset.extras["alphas"]
    tasks = [(preset, alpha, seed) for alpha in alphas for seed in preset.seeds]
    trials = map_trials(_fig13_trial, tasks, parallel=parallel, num_workers=sweep_workers)
    panels = {}
    for alpha_index, alpha in enumerate(alphas):
        samples: Dict[str, List[float]] = {}
        for seed_index in range(len(preset.seeds)):
            trial = trials[alpha_index * len(preset.seeds) + seed_index]
            for name, utility in trial.items():
                samples.setdefault(name, []).append(utility)
        panels[f"alpha={alpha}"] = {
            name: {
                "mean": round(float(np.mean(values)), 2),
                "std": round(float(np.std(values)), 2),
                "min": round(float(np.min(values)), 2),
                "median": round(float(np.median(values)), 2),
                "max": round(float(np.max(values)), 2),
                "samples": values,
            }
            for name, values in samples.items()
        }
    return {"figure": "fig13", "panels": panels, "trials": len(preset.seeds)}


# --------------------------------------------------------------------- #
# Fig. 14 -- online execution with consecutive joining
# --------------------------------------------------------------------- #
def _fig14_trial(preset: FigurePreset, alpha: float) -> dict:
    """One fig14 alpha: online SE vs offline baselines (sweep worker)."""
    config = _workload_config(preset, preset.seeds[0], alpha=alpha)
    workload = generate_online_workload(
        config,
        num_initial=int(preset.extras["num_initial"]),
        join_start=int(preset.extras["join_start"]),
        join_spacing=int(preset.extras["join_spacing"]),
    )
    se_result = StochasticExploration(_se_config(preset, preset.seeds[0])).solve(
        workload.instance, schedule=workload.schedule
    )
    # Baselines are offline: they schedule the fully-arrived window
    # (what they would produce once every join has landed).
    final_instance = se_result.final_instance
    records: Dict[str, dict] = {
        "SE": {"utility": se_result.best_utility, "trace": se_result.utility_trace}
    }
    for scheduler in paper_baselines(preset.seeds[0]):
        result = scheduler.solve(final_instance, preset.baseline_iterations)
        records[scheduler.name] = {"utility": result.utility, "trace": result.utility_trace}
    return {
        "traces": align_traces({name: r["trace"] for name, r in records.items()}),
        "utility": {name: r["utility"] for name, r in records.items()},
        "joins": len(workload.schedule),
    }


def run_fig14_online_joining(
    preset: FigurePreset = PRESETS["fig14"],
    parallel: bool = False,
    sweep_workers: int = 4,
) -> dict:
    """Fig. 14: online SE under consecutive joins vs offline baselines."""
    alphas = preset.extras["alphas"]
    trials = map_trials(
        _fig14_trial,
        [(preset, alpha) for alpha in alphas],
        parallel=parallel,
        num_workers=sweep_workers,
    )
    panels = {f"alpha={alpha}": panel for alpha, panel in zip(alphas, trials)}
    return {"figure": "fig14", "panels": panels}


# --------------------------------------------------------------------- #
# Theory benches -- Theorem 1, Lemma 4 / Theorem 2
# --------------------------------------------------------------------- #
def _small_instance(preset: FigurePreset, seed: int = 11) -> EpochInstance:
    workload = generate_epoch_workload(
        WorkloadConfig(
            num_committees=preset.num_committees,
            capacity=preset.capacity,
            alpha=preset.alpha,
            seed=seed,
            n_max_fraction=1.0,  # keep every committee: the theory uses the full set
        )
    )
    return workload.instance


def run_theory_mixing_time(preset: FigurePreset = PRESETS["theory_mixing"]) -> dict:
    """Theorem 1: empirical mixing time vs eqs. (12)-(13)."""
    instance = _small_instance(preset)
    cardinality = int(preset.extras["cardinality"])
    epsilon = float(preset.extras["epsilon"])
    rows = []
    for beta in preset.extras["betas"]:
        chain = build_chain(instance, cardinality, beta=beta)
        u_max, u_min = float(chain.utilities.max()), float(chain.utilities.min())
        rows.append(
            {
                "beta": beta,
                "states": chain.num_states,
                "irreducible": is_irreducible(chain),
                "detailed_balance_residual": detailed_balance_residual(chain),
                "empirical_tmix_s": empirical_mixing_time(chain, epsilon),
                "lower_bound_s": mixing_time_lower_bound(
                    instance.num_shards, beta, 0.0, u_max, u_min, epsilon
                ),
                "upper_bound_s": mixing_time_upper_bound(
                    instance.num_shards, beta, 0.0, u_max, u_min, epsilon
                ),
            }
        )
    return {"figure": "theory_mixing", "rows": rows, "epsilon": epsilon}


def run_theory_failure(preset: FigurePreset = PRESETS["theory_failure"]) -> dict:
    """Lemma 4 / Theorem 2: exact failure perturbation quantities."""
    instance = _small_instance(preset)
    sizes = space_sizes(instance.num_shards)
    rows = []
    for beta in preset.extras["betas"]:
        for failed_position in range(min(instance.num_shards, 4)):
            analysis = analyze_failure(instance, failed_position, beta)
            rows.append(
                {
                    "beta": beta,
                    "failed_committee": instance.shard_ids[failed_position],
                    "tv_distance": round(analysis.tv_distance, 6),
                    "tv_bound": analysis.tv_bound,
                    "tv_ok": analysis.tv_within_bound,
                    "perturbation": round(analysis.utility_perturbation, 3),
                    "perturbation_bound": round(analysis.perturbation_bound, 3),
                    "perturbation_ok": analysis.perturbation_within_bound,
                }
            )
    return {
        "figure": "theory_failure",
        "rows": rows,
        "space": {
            "full": sizes.full,
            "trimmed": sizes.trimmed,
            "removed_fraction": sizes.removed_fraction,
            "lemma4_bound": tv_distance_bound(),
        },
    }
