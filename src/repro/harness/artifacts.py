"""Experiment artifacts: JSON results with a reproducibility manifest.

CSV files carry the series; this module adds the *provenance*: which
experiment, which preset parameters, which seeds, which package version,
when — everything needed to regenerate a figure byte-for-byte.  The
``mvcom`` CLI writes one artifact per experiment next to the CSVs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
from typing import Callable, Optional

import numpy as np

from repro.harness.presets import FigurePreset
from repro.harness.report import RESULTS_DIR


class _ArtifactEncoder(json.JSONEncoder):
    """JSON encoder handling numpy scalars/arrays and dataclasses."""

    def default(self, value):
        """Encode numpy/dataclass/set values JSON cannot natively."""
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.bool_):
            return bool(value)
        if isinstance(value, np.ndarray):
            return value.tolist()
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return dataclasses.asdict(value)
        if isinstance(value, (set, frozenset)):
            return sorted(value)
        return super().default(value)


#: Injectable wall-clock used for the ``written_at_unix`` stamp.  Tests (and
#: anyone needing byte-stable artifacts under a fixed seed) pass a
#: deterministic callable; ``None`` means the real clock.
Clock = Callable[[], float]


def build_manifest(
    preset: Optional[FigurePreset] = None,
    clock: Optional[Clock] = None,
    **extra,
) -> dict:
    """Provenance block attached to every artifact.

    ``clock`` overrides the timestamp source so artifact files can be
    byte-for-byte reproducible; the default is the real wall clock (this is
    provenance metadata, deliberately outside the simulation's virtual
    time).
    """
    from repro import __version__

    now = time.time if clock is None else clock
    manifest = {
        "repro_version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "written_at_unix": int(now()),
    }
    if preset is not None:
        manifest["preset"] = dataclasses.asdict(preset)
    manifest.update(extra)
    return manifest


def write_artifact(
    name: str,
    result: dict,
    preset: Optional[FigurePreset] = None,
    results_dir: Optional[str] = None,
    clock: Optional[Clock] = None,
) -> str:
    """Persist ``result`` + manifest as ``results/<name>.json``; returns the path."""
    directory = results_dir or RESULTS_DIR
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    payload = {"experiment": name, "manifest": build_manifest(preset, clock=clock), "result": result}
    with open(path, "w") as handle:
        json.dump(payload, handle, cls=_ArtifactEncoder, indent=2)
    return path


def read_artifact(path: str) -> dict:
    """Load an artifact back (plain dicts/lists; arrays come back as lists)."""
    with open(path) as handle:
        payload = json.load(handle)
    for key in ("experiment", "manifest", "result"):
        if key not in payload:
            raise ValueError(f"not an artifact file: missing {key!r}")
    return payload
