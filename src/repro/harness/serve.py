"""``mvcom serve`` — the long-running warm-started scheduling service.

One process owns the whole epoch lifecycle: an :class:`EpochStream`
mempool feeder replays the trace at a configurable rate, every epoch's
instance goes through one SE solve, and — in the default warm mode — the
solve is seeded from the previous epoch's :class:`SEWarmState` so the Γ
replicas never re-bootstrap from scratch.  The PR 7 streaming
observability stack (:class:`MetricsAggregator` + :class:`SloTracker`)
rides along as live telemetry sinks, so steady-state p50/p99 decision
latency and SLO violations come out of the same run that produced the
schedule.

Cold mode (``--cold``) constructs a fresh solver per epoch with the seed
``derive_seed(seed, "serve-epoch-{e}")`` and calls the plain per-epoch
``solve()`` path — byte-identical to invoking today's standalone solver
on the same instance, which is what the CI ``serve-smoke`` parity check
pins.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.se import SEConfig, SEResult, StochasticExploration
from repro.data.stream import EpochStream, EpochStreamConfig
from repro.harness.tracing import build_telemetry
from repro.obs.metrics import LogHistogram, MetricsAggregator
from repro.obs.slo import SloTracker, load_slo_specs
from repro.sim.rng import derive_seed

__all__ = [
    "ServeConfig",
    "EpochRow",
    "ServeReport",
    "run_serve",
    "run_serve_cli",
    "run_serve_comparison",
    "rounds_to_target",
]


@dataclass(frozen=True)
class ServeConfig:
    """One serve run: stream shape x solver shape x mode."""

    epochs: int = 8
    num_committees: int = 60
    rate: float = 1.3
    churn: float = 0.15
    growth: int = 0
    gamma: int = 10
    seed: int = 0
    max_iterations: int = 1500
    convergence_window: int = 300
    engine: str = "auto"
    num_workers: int = 4
    warm: bool = True
    alpha: float = 1.5
    capacity: Optional[int] = None
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")

    def stream_config(self) -> EpochStreamConfig:
        return EpochStreamConfig(
            num_committees=self.num_committees,
            capacity=self.capacity,
            alpha=self.alpha,
            seed=self.seed,
            rate=self.rate,
            churn=self.churn,
            growth=self.growth,
        )

    def solver_config(self, epoch: int) -> SEConfig:
        """Per-epoch solver seed — shared by warm (epoch 0) and cold paths."""
        return SEConfig(
            num_threads=self.gamma,
            max_iterations=self.max_iterations,
            convergence_window=self.convergence_window,
            seed=derive_seed(self.seed, f"serve-epoch-{epoch}"),
            engine=self.engine,
            num_workers=self.num_workers,
        )


@dataclass(frozen=True)
class EpochRow:
    """Steady-state measurements for one served epoch."""

    epoch: int
    committees: int
    scheduled: int
    utility: float
    weight: int
    iterations: int
    converged: bool
    wall_s: float
    wall_to_99_s: float
    engine: str
    txs_fed: int
    joined: int
    departed: int

    def to_json(self) -> dict:
        return {
            "epoch": self.epoch,
            "committees": self.committees,
            "scheduled": self.scheduled,
            "utility": round(self.utility, 6),
            "weight": self.weight,
            "iterations": self.iterations,
            "converged": self.converged,
            "wall_s": round(self.wall_s, 6),
            "wall_to_99_s": round(self.wall_to_99_s, 6),
            "engine": self.engine,
            "txs_fed": self.txs_fed,
            "joined": self.joined,
            "departed": self.departed,
        }


@dataclass
class ServeReport:
    """Aggregate service-level numbers for one serve run."""

    config: ServeConfig
    rows: List[EpochRow]
    solves_per_s: float
    tx_scheduled_per_s: float
    decision_p50_s: float
    decision_p99_s: float
    mean_wall_to_99_s: float
    final_utility: float
    slo_violations: List[dict] = field(default_factory=list)
    #: Full per-epoch results, only when ``collect_results`` was requested
    #: (utility traces feed the warm-vs-cold comparison); never serialised.
    results: List[SEResult] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "mode": "warm" if self.config.warm else "cold",
            "epochs": self.config.epochs,
            "gamma": self.config.gamma,
            "num_committees": self.config.num_committees,
            "churn": self.config.churn,
            "growth": self.config.growth,
            "engine": self.config.engine,
            "seed": self.config.seed,
            "solves_per_s": round(self.solves_per_s, 4),
            "tx_scheduled_per_s": round(self.tx_scheduled_per_s, 2),
            "decision_p50_s": round(self.decision_p50_s, 6),
            "decision_p99_s": round(self.decision_p99_s, 6),
            "mean_wall_to_99_s": round(self.mean_wall_to_99_s, 6),
            "final_utility": round(self.final_utility, 6),
            "slo_violations": self.slo_violations,
            "rows": [row.to_json() for row in self.rows],
        }


def time_to_99(result: SEResult, wall_s: float) -> float:
    """Wall seconds until the incumbent reached 99% of its final utility.

    The trace is per-round, so the wall estimate prorates the measured
    solve wall by the first round index at 99% — the same convention the
    convergence bench uses for time-to-quality comparisons.
    """
    trace = result.utility_trace
    if len(trace) == 0:
        return wall_s
    final = trace[-1]
    threshold = 0.99 * final if final >= 0 else final / 0.99
    first = int(np.argmax(trace >= threshold))
    return wall_s * (first + 1) / len(trace)


def _scheduled_ids(result: SEResult) -> List[int]:
    """Shard ids of the permitted committees (next epoch's drain set)."""
    instance = result.final_instance
    return [
        instance.shard_ids[i]
        for i in range(instance.num_shards)
        if result.best_mask[i]
    ]


class _EngineChoiceSink:
    """Tiny sink remembering the latest ``engine.auto`` resolution.

    ``engine="auto"`` re-evaluates its scalar-vs-batched split inside every
    warm-started solve; scanning the ring buffer for the event would break
    once the buffer wraps (a long serve run emits far more records than its
    capacity), so the label is captured as the events stream past instead.
    """

    __slots__ = ("choice",)

    def __init__(self) -> None:
        self.choice: Optional[str] = None

    def emit(self, record: dict) -> None:
        if record.get("name") == "engine.auto":
            self.choice = str(record.get("engine"))


def run_serve(
    config: ServeConfig, telemetry=None, collect_results: bool = False
) -> ServeReport:
    """Run the steady-state service loop and aggregate its SLIs.

    ``telemetry`` defaults to the harness's standard hub (ring buffer +
    optional JSONL at ``config.trace_path``) with the PR 7 aggregation and
    SLO stack attached as live sinks.  ``collect_results`` keeps every
    epoch's full :class:`SEResult` on the report (utility traces for the
    warm-vs-cold convergence comparison); off by default so long serve
    runs don't accumulate per-round arrays.
    """
    if telemetry is None:
        telemetry = build_telemetry(config.trace_path)
    engine_choice = _EngineChoiceSink()
    telemetry.add_sink(engine_choice)
    aggregator = MetricsAggregator()
    telemetry.add_sink(aggregator)
    tracker = SloTracker(load_slo_specs(), aggregator, telemetry=telemetry)
    telemetry.add_sink(tracker)

    stream = EpochStream(config.stream_config())
    warm_solver = StochasticExploration(config.solver_config(0), telemetry)
    previous: Optional[SEResult] = None
    permitted: List[int] = []
    rows: List[EpochRow] = []
    latencies = LogHistogram()
    total_wall = 0.0
    total_scheduled_tx = 0

    results: List[SEResult] = []
    for epoch in range(config.epochs):
        tick = stream.advance(permitted)
        start = time.perf_counter()
        if config.warm:
            result = warm_solver.solve(tick.instance, warm=previous)
            previous = result
        else:
            solver = StochasticExploration(config.solver_config(epoch), telemetry)
            result = solver.solve(tick.instance)
        wall = time.perf_counter() - start
        wall99 = time_to_99(result, wall)
        engine = config.engine
        if engine == "auto" and engine_choice.choice is not None:
            engine = engine_choice.choice
        if collect_results:
            results.append(result)
        permitted = _scheduled_ids(result)
        total_wall += wall
        total_scheduled_tx += int(result.best_weight)
        latencies.add(wall)
        telemetry.observe("serve.decision_latency_s", wall, epoch=epoch)
        telemetry.event(
            "serve.epoch",
            epoch=epoch,
            committees=tick.live,
            scheduled=len(permitted),
            utility=result.best_utility,
            weight=result.best_weight,
            iterations=result.iterations,
            engine=engine,
            warm=config.warm,
            joined=len(tick.joined),
            departed=len(tick.departed),
        )
        rows.append(
            EpochRow(
                epoch=epoch,
                committees=tick.live,
                scheduled=len(permitted),
                utility=result.best_utility,
                weight=int(result.best_weight),
                iterations=result.iterations,
                converged=result.converged,
                wall_s=wall,
                wall_to_99_s=wall99,
                engine=engine,
                txs_fed=tick.txs_fed,
                joined=len(tick.joined),
                departed=len(tick.departed),
            )
        )

    violations = tracker.check()
    wall = max(total_wall, 1e-9)
    return ServeReport(
        config=config,
        rows=rows,
        solves_per_s=len(rows) / wall,
        tx_scheduled_per_s=total_scheduled_tx / wall,
        decision_p50_s=latencies.quantile(0.5),
        decision_p99_s=latencies.quantile(0.99),
        mean_wall_to_99_s=float(np.mean([row.wall_to_99_s for row in rows])),
        final_utility=rows[-1].utility,
        slo_violations=violations,
        results=results,
    )


def rounds_to_target(trace: np.ndarray, target: float) -> int:
    """First race round (1-based) at which the incumbent reached ``target``.

    Falls back to the trace length when the run never got there — the
    comparison then charges the full solve, which only *understates* the
    slower side's deficit.
    """
    hit = trace >= target
    return int(np.argmax(hit)) + 1 if hit.any() else len(trace)


def run_serve_comparison(
    config: Optional[ServeConfig] = None, out_path: Optional[str] = None
) -> dict:
    """Warm-vs-cold steady state on the same drifting committee stream.

    Runs the service loop twice — warm (one solver chained through
    :class:`SEWarmState`) and cold (a fresh solver per epoch, today's
    standalone path) — over byte-identical epoch streams, then compares
    time-to-99%-utility per epoch.  The target is *shared*:
    ``0.99 * min(warm_final, cold_final)`` for each epoch, so neither run
    is graded against a finish line only it can see.  Epoch 0 is excluded
    (both runs bootstrap identically there, by construction).

    The primary speedup is measured in race rounds — machine-independent,
    so the recorded artifact reproduces anywhere — with the wall-clock
    prorated equivalent alongside.  Writes ``out_path`` when given and
    returns the record.
    """
    if config is None:
        config = ServeConfig()
    warm_report = run_serve(
        ServeConfig(**{**_config_dict(config), "warm": True}),
        collect_results=True,
    )
    cold_report = run_serve(
        ServeConfig(**{**_config_dict(config), "warm": False}),
        collect_results=True,
    )
    epochs = []
    warm_rounds: List[int] = []
    cold_rounds: List[int] = []
    for epoch in range(1, config.epochs):
        warm_trace = warm_report.results[epoch].utility_trace
        cold_trace = cold_report.results[epoch].utility_trace
        target = 0.99 * min(float(warm_trace[-1]), float(cold_trace[-1]))
        w = rounds_to_target(warm_trace, target)
        c = rounds_to_target(cold_trace, target)
        warm_rounds.append(w)
        cold_rounds.append(c)
        epochs.append(
            {
                "epoch": epoch,
                "target_utility": round(target, 6),
                "warm_rounds_to_99": w,
                "cold_rounds_to_99": c,
                "warm_final_utility": round(float(warm_trace[-1]), 6),
                "cold_final_utility": round(float(cold_trace[-1]), 6),
            }
        )
    speedup_rounds = float(np.mean(cold_rounds) / max(np.mean(warm_rounds), 1e-9))
    speedup_wall = float(
        cold_report.mean_wall_to_99_s / max(warm_report.mean_wall_to_99_s, 1e-9)
    )
    record = {
        "bench": "serve",
        "gamma": config.gamma,
        "num_committees": config.num_committees,
        "churn": config.churn,
        "rate": config.rate,
        "epochs": config.epochs,
        "seed": config.seed,
        "engine": config.engine,
        "warm_speedup_rounds_to_99": round(speedup_rounds, 4),
        "warm_speedup_wall_to_99": round(speedup_wall, 4),
        "mean_warm_rounds_to_99": round(float(np.mean(warm_rounds)), 2),
        "mean_cold_rounds_to_99": round(float(np.mean(cold_rounds)), 2),
        "per_epoch": epochs,
        "warm": warm_report.to_json(),
        "cold": cold_report.to_json(),
    }
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return record


def _config_dict(config: ServeConfig) -> dict:
    """A mutable kwargs view of a frozen :class:`ServeConfig`."""
    return asdict(config)


# ------------------------------------------------------------------ #
# CLI glue
# ------------------------------------------------------------------ #
def run_serve_cli(args) -> int:
    """``mvcom serve``: run the service loop and print/persist the report."""
    config = ServeConfig(
        epochs=args.epochs if args.epochs is not None else 8,
        num_committees=args.committees,
        rate=args.rate,
        churn=args.churn,
        growth=args.growth,
        gamma=args.gamma,
        seed=args.seed,
        max_iterations=args.iterations,
        engine=args.engine,
        num_workers=args.workers,
        warm=not args.cold,
        capacity=args.capacity,
        trace_path=args.trace,
    )
    mode = "warm" if config.warm else "cold"
    print(
        f"serve: {config.epochs} epochs x {config.num_committees} committees "
        f"(churn {config.churn}, growth {config.growth:+d}), "
        f"Gamma={config.gamma}, engine={config.engine}, mode={mode}"
    )
    report = run_serve(config)
    for row in report.rows:
        print(
            f"  epoch {row.epoch:3d}: {row.committees:4d} committees, "
            f"{row.scheduled:4d} scheduled, u={row.utility:14.2f}, "
            f"{row.iterations:5d} iters, {row.wall_s*1e3:8.1f} ms "
            f"[{row.engine}]"
        )
    print(
        f"steady state: {report.solves_per_s:.2f} solves/s, "
        f"{report.tx_scheduled_per_s:,.0f} tx/s, "
        f"decision p50 {report.decision_p50_s*1e3:.1f} ms / "
        f"p99 {report.decision_p99_s*1e3:.1f} ms, "
        f"mean time-to-99% {report.mean_wall_to_99_s*1e3:.1f} ms"
    )
    if report.slo_violations:
        print(f"SLO violations: {len(report.slo_violations)}")
        for violation in report.slo_violations:
            print(f"  {violation}")
    else:
        print("SLOs: all passing")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[serve report written to {args.out}]")
    if args.trace:
        print(f"[trace written to {args.trace}]")
    return 1 if report.slo_violations else 0
