"""Eth2-scale scaling bench: the ``mvcom eth2scale`` runner.

Drives one streaming epoch (:meth:`repro.chain.elastico.ElasticoSimulation.
run_epoch_streaming`) per network size and records the scaling curve
``nodes -> {epoch wall, peak RSS, SE solve wall}``.  The preset tops out
at the beacon-chain shape -- ``SHARD_COUNT = 2**10`` shards of
``MAX_PERIOD_COMMITTEE_SIZE = 2**7`` members, i.e. 131 072 validators --
which the chunked fastpath kernels (:mod:`repro.chain.fastpath`) and the
memory-bounded crosslink aggregator (:mod:`repro.chain.final`) keep under
a 2 GiB peak-RSS budget.

Wall clocks and ``getrusage`` live here legitimately: the harness sits
outside the replayable packages (rule MV002 scopes ``repro.chain`` /
``repro.core`` / ``repro.sim``).  Peak RSS via
:func:`repro.harness.tracing.sample_resources` is process-lifetime
*monotone* (``ru_maxrss`` never decreases), so the curve is measured in
ascending size order and each point's reading is an upper bound that the
largest size dominates -- the budget assertion binds where it matters.
"""

from __future__ import annotations

import json
import time
from typing import Optional, Sequence

import numpy as np

from repro.chain.elastico import ElasticoSimulation
from repro.chain.fastpath import kernel_chunk_rows
from repro.chain.params import ChainParams
from repro.core.problem import MVComConfig
from repro.core.se import SEConfig, StochasticExploration
from repro.harness.presets import PRESETS
from repro.harness.tracing import emit_resource_gauge, sample_resources
from repro.obs.telemetry import NULL_TELEMETRY

#: Default shape (the preset is the single source of truth).
_PRESET = PRESETS["eth2scale"]


def run_eth2scale(
    network_sizes: Optional[Sequence[int]] = None,
    committee_size: Optional[int] = None,
    max_batch_bytes: Optional[int] = None,
    capacity_per_committee: Optional[int] = None,
    seed: int = 0,
    gamma: Optional[int] = None,
    se_iterations: Optional[int] = None,
    out_path: Optional[str] = "BENCH_eth2scale.json",
    telemetry=NULL_TELEMETRY,
) -> dict:
    """Measure the eth2-scale curve and (optionally) write the bench record.

    One streaming epoch per size, ascending (see the module docstring for
    why the order matters to ``ru_maxrss``).  The final committee runs the
    real SE scheduler (``engine="auto"``) and its solve wall is split out
    of the epoch wall, so the record separates chain-substrate time from
    scheduler time.  Returns the record dict that also lands in
    ``out_path`` when given.
    """
    sizes = tuple(
        int(n) for n in (network_sizes or _PRESET.extras["network_sizes"])
    )
    if sizes != tuple(sorted(sizes)):
        raise ValueError("network_sizes must be ascending (ru_maxrss is monotone)")
    c = int(committee_size or _PRESET.extras["committee_size"])
    budget = int(max_batch_bytes or _PRESET.extras["max_batch_bytes"])
    per_committee = int(
        capacity_per_committee or _PRESET.extras["capacity_per_committee"]
    )
    iterations = int(se_iterations or _PRESET.se_iterations)
    replicas = int(gamma or _PRESET.gamma)

    points = []
    for num_nodes in sizes:
        params = ChainParams(
            num_nodes=num_nodes,
            committee_size=c,
            seed=seed,
            chain_engine="fastpath",
            max_batch_bytes=budget,
        )
        solver = StochasticExploration(
            SEConfig(
                engine="auto",
                num_threads=replicas,
                max_iterations=iterations,
                convergence_window=min(iterations, _PRESET.convergence_window),
                seed=seed,
            )
        )
        se_wall = {"s": 0.0, "solves": 0}

        def scheduler(instance) -> np.ndarray:
            started = time.perf_counter()
            mask = solver.solve(instance).best_mask
            se_wall["s"] += time.perf_counter() - started
            se_wall["solves"] += 1
            return mask

        sim = ElasticoSimulation(
            params,
            mvcom_config=MVComConfig(
                capacity=per_committee * max(params.num_committees, 1)
            ),
            scheduler=scheduler,
            telemetry=telemetry,
        )
        started = time.perf_counter()
        outcome = sim.run_epoch_streaming()
        epoch_wall = time.perf_counter() - started
        sample = sample_resources()
        if telemetry is not NULL_TELEMETRY and getattr(telemetry, "enabled", False):
            emit_resource_gauge(telemetry, wall_s=epoch_wall)
        final = outcome.final
        points.append(
            {
                "nodes": num_nodes,
                "committees": params.num_committees,
                "committees_formed": outcome.num_committees,
                "shards_submitted": outcome.shards_submitted,
                "shards_permitted": final.permitted_committees if final else 0,
                "permitted_txs": final.permitted_txs if final else 0,
                "epoch_wall_s": epoch_wall,
                "se_wall_s": se_wall["s"],
                "se_solves": se_wall["solves"],
                "peak_rss_kib": sample["peak_rss_kib"] if sample else None,
                "kernel_chunk_rows": kernel_chunk_rows(c, budget),
            }
        )

    record = {
        "figure": "eth2scale",
        "committee_size": c,
        "max_batch_bytes": budget,
        "capacity_per_committee": per_committee,
        "gamma": replicas,
        "se_iterations": iterations,
        "seed": seed,
        "points": points,
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return record


def render_points(points: Sequence[dict]) -> str:
    """Fixed-width text table of the scaling curve (for the CLI)."""
    header = (
        f"{'nodes':>8} {'formed':>7} {'submitted':>9} {'permitted':>9} "
        f"{'epoch wall':>11} {'SE wall':>9} {'peak RSS':>10}"
    )
    lines = [header]
    for point in points:
        rss = point["peak_rss_kib"]
        rss_text = f"{rss / 1024:.0f}MiB" if rss is not None else "n/a"
        lines.append(
            f"{point['nodes']:>8} {point['committees_formed']:>7} "
            f"{point['shards_submitted']:>9} {point['shards_permitted']:>9} "
            f"{point['epoch_wall_s']:>10.2f}s {point['se_wall_s']:>8.2f}s "
            f"{rss_text:>10}"
        )
    return "\n".join(lines)


def run_eth2scale_cli(args) -> int:
    """``mvcom eth2scale``: run the curve with CLI overrides, print, write."""
    from repro.harness.tracing import build_telemetry

    sizes = None
    if args.network_sizes:
        sizes = tuple(int(part) for part in args.network_sizes.split(",") if part)
    telemetry = build_telemetry(args.trace) if args.trace else NULL_TELEMETRY
    record = run_eth2scale(
        network_sizes=sizes,
        committee_size=args.committee_size,
        max_batch_bytes=args.max_batch_bytes,
        seed=args.seed,
        gamma=args.gamma,
        se_iterations=args.iterations,
        out_path=args.out or "BENCH_eth2scale.json",
        telemetry=telemetry,
    )
    print(f"eth2scale: committee_size={record['committee_size']}, "
          f"max_batch_bytes={record['max_batch_bytes']}, "
          f"Gamma={record['gamma']}, seed={record['seed']}")
    print(render_points(record["points"]))
    print(f"[record written to {args.out or 'BENCH_eth2scale.json'}]")
    if args.trace:
        print(f"[trace written to {args.trace}]")
    return 0
