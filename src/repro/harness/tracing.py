"""Traced runs: wire a live telemetry hub into one SE + chain-phase solve.

This is the harness side of :mod:`repro.obs`: it is the one place that owns
wall clocks and sinks (the instrumented packages only ever *receive* a
hub), builds the standard hub for ``mvcom solve --trace``, and runs a
small end-to-end scenario -- an epoch workload through
:class:`~repro.core.se.StochasticExploration` followed by a final-committee
PBFT round on the DES substrate -- so one JSONL stream contains SE
transition/RESET events, sim-engine stats, and a chain-phase span.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.chain.committee import calibrated_verify_mean
from repro.chain.fastpath import run_pbft
from repro.chain.node import spawn_nodes
from repro.chain.params import ChainParams
from repro.chain.pbft import PbftOutcome
from repro.core.se import SEConfig, SEResult, StochasticExploration
from repro.data.workload import WorkloadConfig, generate_epoch_workload
from repro.obs.profiling import profile_call
from repro.obs.sinks import JsonlSink, RingBufferSink
from repro.obs.telemetry import Telemetry
from repro.sim.rng import RandomStreams


def build_telemetry(
    trace_path: Optional[str] = None,
    ring_capacity: int = 65536,
) -> Telemetry:
    """The harness's standard hub: ring buffer + optional JSONL stream.

    Wall time comes from ``time.perf_counter`` -- legitimate here because
    the harness is *outside* the replayable packages; deterministic ``t``
    stamps stay on the hub's emission sequence.
    """
    sinks: List = [RingBufferSink(ring_capacity)]
    if trace_path is not None:
        sinks.append(JsonlSink(trace_path))
    return Telemetry(wall_clock=time.perf_counter, sinks=sinks)


def sample_resources() -> Optional[dict]:
    """Peak RSS and CPU times of this process via ``resource.getrusage``.

    Harness-only by design (wall/OS state would break MV002 inside the
    replayable packages); returns ``None`` where the stdlib ``resource``
    module is unavailable (non-POSIX platforms) so callers can skip the
    gauge instead of crashing.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only module
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # ru_maxrss is KiB on Linux but bytes on macOS.
    divisor = 1024.0 if sys.platform == "darwin" else 1.0
    return {
        "peak_rss_kib": usage.ru_maxrss / divisor,
        "user_s": usage.ru_utime,
        "system_s": usage.ru_stime,
    }


def emit_resource_gauge(
    telemetry: Telemetry,
    wall_s: Optional[float] = None,
    sampler: Optional[Callable[[], Optional[dict]]] = None,
) -> Optional[dict]:
    """Emit the opt-in ``obs.resources`` gauge into an injected hub.

    One ``obs.resources`` event carries the full sample (peak RSS, CPU
    times, and the caller-measured wall duration) and a companion gauge
    tracks ``peak_rss_kib`` so the metrics aggregator sees it as a keyed
    series.  The hub is injected (MV007-clean) and the sample values are
    machine state, which is why ``mvcom trace diff`` excludes
    ``obs.resources*`` series from regression comparison by default.
    """
    sample = (sampler or sample_resources)()
    if sample is None:
        return None
    fields = dict(sample)
    if wall_s is not None:
        fields["wall_s"] = wall_s
    telemetry.event("obs.resources", **fields)
    telemetry.gauge("obs.resources.peak_rss_kib", float(sample["peak_rss_kib"]))
    return fields


@dataclass
class TracedRun:
    """Everything one traced solve produced."""

    result: SEResult
    pbft: PbftOutcome
    telemetry: Telemetry
    records: List[dict]
    hotspots: List[dict]
    trace_path: Optional[str]


def traced_solve(
    num_committees: int = 100,
    capacity: Optional[int] = None,
    gamma: int = 10,
    seed: int = 0,
    max_iterations: int = 2000,
    convergence_window: int = 500,
    alpha: float = 1.5,
    trace_path: Optional[str] = None,
    profile: bool = False,
    top_n: int = 10,
    telemetry: Optional[Telemetry] = None,
    engine: str = "auto",
    num_workers: int = 4,
    chain_engine: str = "des",
    resources: bool = False,
    resource_sampler: Optional[Callable[[], Optional[dict]]] = None,
) -> TracedRun:
    """Run one fully-traced SE solve plus a final-committee PBFT round.

    Builds (or accepts) a telemetry hub, solves a trace-driven epoch
    workload under it, then runs one PBFT round for the final committee so
    the stream carries a chain-phase span.  With ``profile=True`` the
    solver call additionally runs under cProfile and its top-``top_n``
    hotspots land in the same stream as a ``profile.hotspots`` event.

    ``engine`` selects the SE execution engine (``auto`` — the default —
    resolves to ``serial``, ``parallel`` or ``vectorized`` per
    :func:`repro.core.engine.select_engine` and logs the pick as an
    ``engine.auto`` event) and ``num_workers`` sizes the parallel
    engine's process pool — telemetry and probes keep firing on the
    driver at segment boundaries for every engine.
    ``chain_engine`` selects the substrate for the final PBFT round
    (``des`` reference simulation or the ``fastpath`` closed-form kernel;
    see :mod:`repro.chain.fastpath`).  With ``resources=True`` the
    harness-only ``obs.resources`` gauge (peak RSS via ``getrusage``,
    wall via the hub's wall clock) is emitted when the solve span closes;
    ``resource_sampler`` injects a fake sampler for tests.
    """
    owns_hub = telemetry is None
    if telemetry is None:
        telemetry = build_telemetry(trace_path)
    ring = next(
        (sink for sink in telemetry.sinks if isinstance(sink, RingBufferSink)), None
    )

    workload = generate_epoch_workload(
        WorkloadConfig(
            num_committees=num_committees,
            capacity=capacity if capacity is not None else 1000 * num_committees,
            alpha=alpha,
            seed=seed,
        )
    )
    solver = StochasticExploration(
        SEConfig(
            num_threads=gamma,
            max_iterations=max_iterations,
            convergence_window=convergence_window,
            seed=seed,
            engine=engine,
            num_workers=num_workers,
        ),
        telemetry=telemetry,
    )
    hotspots: List[dict] = []
    solve_started = time.perf_counter()
    with telemetry.span("harness.se_solve", committees=num_committees, gamma=gamma):
        if profile:
            result, hotspots = profile_call(
                solver.solve,
                workload.instance,
                telemetry=telemetry,
                name="StochasticExploration.solve",
                top_n=top_n,
            )
        else:
            result = solver.solve(workload.instance)
    if resources:
        emit_resource_gauge(
            telemetry,
            wall_s=time.perf_counter() - solve_started,
            sampler=resource_sampler,
        )

    # One chain-phase: the final committee's PBFT round on the selected engine.
    streams = RandomStreams(seed)
    params = ChainParams(chain_engine=chain_engine)
    members = spawn_nodes(
        count=params.committee_size,
        byzantine_fraction=0.0,
        rng=streams.get("traced-final-members"),
    )
    with telemetry.span("harness.chain_phase"):
        pbft = run_pbft(
            params.chain_engine,
            members=members,
            rng=streams.get("traced-final-pbft"),
            network_params=params.network,
            verify_mean_s=calibrated_verify_mean(params),
            round_tag="traced-final",
            telemetry=telemetry,
        )

    telemetry.event(
        "harness.done",
        utility=result.best_utility,
        iterations=result.iterations,
        converged=result.converged,
        pbft_committed=pbft.committed,
        pbft_latency=pbft.latency if pbft.committed else None,
    )
    records = ring.records if ring is not None else []
    if owns_hub:
        telemetry.close()
    return TracedRun(
        result=result,
        pbft=pbft,
        telemetry=telemetry,
        records=records,
        hotspots=hotspots,
        trace_path=trace_path,
    )
