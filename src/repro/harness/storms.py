"""``mvcom storm``: churn-storm fault injection from the command line.

Harness glue around :mod:`repro.faultinject`: builds the
:class:`~repro.faultinject.StormConfig` from CLI flags, owns the telemetry
hub (rule MV007 — the faultinject package only *receives* one), renders a
human summary, and on a violation optionally shrinks the schedule and
writes the minimal reproducer JSON so CI can attach it as an artifact.

Exit codes: 0 for ``survived`` (and for graceful ``infeasible``
degradation), 1 for a ``violated`` invariant — so ``mvcom storm`` slots
directly into a CI job.
"""

from __future__ import annotations

from typing import Optional

from repro.faultinject import (
    DEFAULT_ARMED,
    StormConfig,
    StormOutcome,
    load_reproducer,
    make_reproducer,
    replay_reproducer,
    run_epoch_storm,
    run_storm,
    save_reproducer,
    shrink_storm,
)
from repro.harness.tracing import build_telemetry
from repro.obs.telemetry import NULL_TELEMETRY

#: Default path for the shrunk reproducer artifact.
DEFAULT_REPRODUCER_PATH = "storm_reproducer.json"


def config_from_args(args) -> StormConfig:
    """Map the CLI namespace onto a :class:`StormConfig`."""
    return StormConfig(
        seed=args.seed,
        num_events=args.events,
        num_committees=args.committees,
        capacity=args.capacity,
        gamma=args.gamma,
        max_iterations=args.iterations,
        convergence_window=max(args.iterations // 4, 50),
        epochs=args.epochs if args.epochs is not None else 1,
    )


def _armed_from_args(args):
    armed = DEFAULT_ARMED
    if getattr(args, "strict", False):
        armed = armed + ("strict-n-min",)
    return armed


def _print_outcome(outcome: StormOutcome) -> None:
    config = outcome.config
    print(
        f"storm: seed={config.seed} events={len(outcome.events)} "
        f"committees={config.num_committees} gamma={config.gamma}"
    )
    print(
        f"  status={outcome.status}  boundaries={len(outcome.boundaries)}"
        f"  invariant-checks={outcome.checks_run}"
        f"  theorem2-checks={outcome.theorem2_checked}"
    )
    if outcome.result is not None:
        result = outcome.result
        print(
            f"  iterations={result.iterations}  converged={result.converged}"
            f"  best_utility={result.best_utility:.2f}"
            f"  best_count={result.best_count}  best_weight={result.best_weight}"
        )
    if outcome.violation is not None:
        print(f"  VIOLATION: {outcome.violation}")
    if outcome.infeasible_reason is not None:
        print(f"  infeasible (graceful): {outcome.infeasible_reason}")


def _handle_violation(outcome: StormOutcome, args, telemetry) -> None:
    if not getattr(args, "shrink", False):
        return
    print(f"  shrinking {len(outcome.events)}-event schedule ...")
    minimal, probes = shrink_storm(outcome, telemetry=telemetry)
    print(f"  minimal reproducer: {len(minimal)} events ({probes} replay probes)")
    for event in sorted(minimal, key=lambda e: e.iteration):
        print(f"    it={event.iteration:5d}  {event.kind.name:5s}  shard={event.shard_id}")
    out_path = args.out or DEFAULT_REPRODUCER_PATH
    save_reproducer(out_path, make_reproducer(outcome, minimal))
    print(f"  [reproducer written to {out_path}]")


def _run_replay(args, telemetry) -> int:
    reproducer = load_reproducer(args.replay)
    failure = reproducer.get("failure", {})
    print(f"replaying {args.replay}")
    print(f"  recorded failure: [{failure.get('invariant')}] {failure.get('message')}")
    outcome = replay_reproducer(reproducer, telemetry=telemetry)
    _print_outcome(outcome)
    if outcome.status == "violated":
        recorded = failure.get("invariant")
        if recorded and outcome.signature == recorded:
            print("  replay reproduced the recorded failure")
        return 1
    print("  replay did NOT reproduce the recorded failure")
    return 0


def _run_epochs(config: StormConfig, armed, telemetry) -> int:
    outcome = run_epoch_storm(config, armed=armed, telemetry=telemetry)
    print(
        f"epoch storm: seed={config.seed} epochs={config.epochs} "
        f"committees={config.num_committees}"
    )
    print(f"  status={outcome.status}  epochs-completed={len(outcome.epoch_outcomes)}")
    for epoch_index, epoch_outcome in enumerate(outcome.epoch_outcomes):
        result = epoch_outcome.result
        utility = f"{result.best_utility:.2f}" if result else "-"
        print(
            f"  epoch {epoch_index}: events={len(epoch_outcome.events)}"
            f"  boundaries={len(epoch_outcome.boundaries)}"
            f"  iterations={result.iterations if result else '-'}"
            f"  utility={utility}"
        )
    if outcome.pipeline is not None:
        print(
            f"  total_throughput={outcome.pipeline.total_throughput} TXs"
            f"  worst_starvation={outcome.pipeline.worst_starvation} epochs"
        )
    if outcome.violation is not None:
        print(f"  VIOLATION: {outcome.violation}")
        return 1
    if outcome.infeasible_reason is not None:
        print(f"  infeasible (graceful): {outcome.infeasible_reason}")
    return 0


def run_storm_cli(args) -> int:
    """Entry point for ``mvcom storm``; returns the process exit code."""
    telemetry = build_telemetry(args.trace) if args.trace else NULL_TELEMETRY
    try:
        if args.replay:
            return _run_replay(args, telemetry)
        config = config_from_args(args)
        armed = _armed_from_args(args)
        if config.epochs > 1:
            return _run_epochs(config, armed, telemetry)
        outcome = run_storm(config, armed=armed, telemetry=telemetry)
        _print_outcome(outcome)
        if outcome.status == "violated":
            _handle_violation(outcome, args, telemetry)
            return 1
        return 0
    finally:
        if telemetry is not NULL_TELEMETRY:
            telemetry.close()
            if args.trace:
                print(f"[trace written to {args.trace}]")
