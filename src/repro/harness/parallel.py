"""Parallel figure-sweep runner.

The per-figure experiment loops in :mod:`repro.harness.experiments` are
embarrassingly parallel: fig10/fig13 iterate independent seeds, fig11
independent committee-set sizes, fig12/fig14 independent alphas.  Each
loop body is factored into a module-level *trial* function (picklable, per
lint rule MV008) that takes one task tuple and returns plain record data;
:func:`map_trials` fans the tasks out over the spawn-safe process pool
built in :mod:`repro.core.engine` and hands the results back **in task
order**, so the driver-side merge -- and therefore the written artifact --
is byte-identical to the serial runner.

Determinism argument: every trial re-derives its workload and solver RNG
from the seeds in its task tuple alone (no shared mutable state crosses
the process boundary), and the serial runner executes the *same* trial
functions through the same merge code, so ``parallel=True`` changes
wall-clock only.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

from repro.core.engine import shared_pool

T = TypeVar("T")

#: Figures whose runners accept ``parallel=`` / ``sweep_workers=``.
SWEEP_FIGURES = ("fig10", "fig11", "fig12", "fig13", "fig14")


def map_trials(
    trial: Callable[..., T],
    tasks: Sequence[tuple],
    parallel: bool = False,
    num_workers: int = 4,
) -> List[T]:
    """Run ``trial(*task)`` for each task, serially or over the pool.

    Results always come back in task order -- ``parallel`` trades wall
    clock only, never artifact content.  ``trial`` must be a module-level
    function and each task tuple picklable (spawn-safe dispatch).
    """
    if not parallel or num_workers <= 1 or len(tasks) <= 1:
        return [trial(*task) for task in tasks]
    pool = shared_pool(num_workers)
    futures = [pool.submit(trial, *task) for task in tasks]
    return [future.result() for future in futures]


def run_sweep(
    figure: str,
    preset=None,
    parallel: bool = True,
    num_workers: int = 4,
) -> dict:
    """Run one sweep figure end to end, fanning trials over the pool.

    Thin dispatch used by the CLI and the benches; equivalent to calling
    the figure's runner with ``parallel=``/``sweep_workers=`` directly.
    """
    from repro.harness import experiments  # deferred: experiments imports us

    if figure not in SWEEP_FIGURES:
        raise ValueError(f"not a sweep figure: {figure!r} (expected one of {SWEEP_FIGURES})")
    runners = {
        "fig10": experiments.run_fig10_valuable_degree,
        "fig11": experiments.run_fig11_vary_committees,
        "fig12": experiments.run_fig12_vary_alpha,
        "fig13": experiments.run_fig13_utility_distribution,
        "fig14": experiments.run_fig14_online_joining,
    }
    kwargs = {"parallel": parallel, "sweep_workers": num_workers}
    if preset is not None:
        return runners[figure](preset, **kwargs)
    return runners[figure](**kwargs)
