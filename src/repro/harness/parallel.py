"""Parallel figure-sweep runner.

The per-figure experiment loops in :mod:`repro.harness.experiments` are
embarrassingly parallel: fig10/fig13 iterate independent seeds, fig11
independent committee-set sizes, fig12/fig14 independent alphas.  Each
loop body is factored into a module-level *trial* function (picklable, per
lint rule MV008) that takes one task tuple and returns plain record data;
:func:`map_trials` fans the tasks out over the spawn-safe process pool
built in :mod:`repro.core.engine` and hands the results back **in task
order**, so the driver-side merge -- and therefore the written artifact --
is byte-identical to the serial runner.

Determinism argument: every trial re-derives its workload and solver RNG
from the seeds in its task tuple alone (no shared mutable state crosses
the process boundary), and the serial runner executes the *same* trial
functions through the same merge code, so ``parallel=True`` changes
wall-clock only.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.core.engine import clamp_workers, shared_pool

T = TypeVar("T")

#: Figures whose runners accept ``parallel=`` / ``sweep_workers=``.
SWEEP_FIGURES = ("fig10", "fig11", "fig12", "fig13", "fig14")

#: Default pool size when ``--sweep-workers auto`` lands on a multi-core box.
AUTO_SWEEP_WORKERS = 4

#: ``auto`` falls back to the serial loop at or below this core count — the
#: recorded bench shows the pool losing outright there (pickling cost with
#: no parallelism to pay for it).
AUTO_SWEEP_MIN_CPUS = 3


def _recorded_sweep_speedup() -> Optional[float]:
    """Best-effort read of the recorded sweep speedup from the bench file.

    Returns ``chain_fastpath.sweep_speedup`` from ``BENCH_se_convergence.json``
    at the repo root, or ``None`` when running from an installed package (no
    bench file in sight) — callers fall back to the core-count heuristic.
    """
    bench = Path(__file__).resolve().parents[3] / "BENCH_se_convergence.json"
    try:
        record = json.loads(bench.read_text())
        return float(record["chain_fastpath"]["sweep_speedup"])
    except (OSError, KeyError, TypeError, ValueError):
        return None


def resolve_sweep_workers(
    requested: Union[int, str, None] = "auto",
    cpu_count: Optional[int] = None,
) -> Tuple[int, Optional[str]]:
    """Resolve a ``--sweep-workers`` value to ``(workers, warning)``.

    ``"auto"`` (the default) keeps the sweep serial when the box exposes
    ``cpu_count <= 2`` — the configuration where the recorded bench shows
    the pool losing (``chain_fastpath.sweep_speedup`` 0.25x on 1 core) —
    and otherwise grants ``min(AUTO_SWEEP_WORKERS, cpu_count)``.  An
    explicit integer is honoured (clamped to the core count, like
    :func:`repro.core.engine.clamp_workers`) but comes back with a one-line
    warning when the recorded bench says this box loses, so ``--parallel``
    never silently runs a known-regressing path.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if requested in ("auto", None):
        if cpus < AUTO_SWEEP_MIN_CPUS:
            return 1, None
        return min(AUTO_SWEEP_WORKERS, cpus), None
    requested = int(requested)
    workers = clamp_workers(requested, cpu_count=cpus)
    if requested > 1 and cpus < AUTO_SWEEP_MIN_CPUS:
        recorded = _recorded_sweep_speedup()
        detail = (
            f"recorded bench sweep_speedup {recorded:.2f}x"
            if recorded is not None
            else "recorded bench shows the pool losing"
        )
        return workers, (
            f"warning: parallel sweep requested {requested} workers on a "
            f"{cpus}-cpu box ({detail}); granting {workers} — "
            f"use --sweep-workers auto to stay serial here"
        )
    return workers, None


def map_trials(
    trial: Callable[..., T],
    tasks: Sequence[tuple],
    parallel: bool = False,
    num_workers: int = 4,
) -> List[T]:
    """Run ``trial(*task)`` for each task, serially or over the pool.

    Results always come back in task order -- ``parallel`` trades wall
    clock only, never artifact content.  ``trial`` must be a module-level
    function and each task tuple picklable (spawn-safe dispatch).
    """
    if not parallel or num_workers <= 1 or len(tasks) <= 1:
        return [trial(*task) for task in tasks]
    pool = shared_pool(num_workers)
    futures = [pool.submit(trial, *task) for task in tasks]
    return [future.result() for future in futures]


def run_sweep(
    figure: str,
    preset=None,
    parallel: bool = True,
    num_workers: Union[int, str] = "auto",
) -> dict:
    """Run one sweep figure end to end, fanning trials over the pool.

    Thin dispatch used by the CLI and the benches; equivalent to calling
    the figure's runner with ``parallel=``/``sweep_workers=`` directly.
    ``num_workers`` accepts ``"auto"`` (see :func:`resolve_sweep_workers`).
    """
    from repro.harness import experiments  # deferred: experiments imports us

    if figure not in SWEEP_FIGURES:
        raise ValueError(f"not a sweep figure: {figure!r} (expected one of {SWEEP_FIGURES})")
    num_workers, _ = resolve_sweep_workers(num_workers)
    runners = {
        "fig10": experiments.run_fig10_valuable_degree,
        "fig11": experiments.run_fig11_vary_committees,
        "fig12": experiments.run_fig12_vary_alpha,
        "fig13": experiments.run_fig13_utility_distribution,
        "fig14": experiments.run_fig14_online_joining,
    }
    kwargs = {"parallel": parallel, "sweep_workers": num_workers}
    if preset is not None:
        return runners[figure](preset, **kwargs)
    return runners[figure](**kwargs)
