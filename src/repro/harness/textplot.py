"""Terminal line plots for convergence figures.

The environment has no plotting stack, so the figure benches render their
series as character-grid line charts: one glyph per series, a y-axis with
real tick values, and an x-axis in iterations.  Good enough to *see*
Fig. 8's Γ ordering or Fig. 9's failure dip directly in the pytest output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

#: Series glyphs, assigned in insertion order.
GLYPHS = "*o+x#@%&"


def _scale(values: np.ndarray, lo: float, hi: float, size: int) -> np.ndarray:
    """Map values in [lo, hi] onto integer rows [0, size-1]."""
    if hi <= lo:
        return np.zeros(len(values), dtype=int)
    scaled = (values - lo) / (hi - lo) * (size - 1)
    return np.clip(np.round(scaled).astype(int), 0, size - 1)


def line_plot(
    series: Dict[str, Sequence[float]],
    width: int = 72,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "iteration",
) -> str:
    """Render named series as one character-grid chart.

    Series of different lengths share the x-axis by *fractional position*
    (iteration counts are rescaled), which matches how the paper overlays
    algorithms with different budgets.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 16 or height < 4:
        raise ValueError("plot area too small")
    arrays = {name: np.asarray(list(values), dtype=np.float64) for name, values in series.items()}
    for name, array in arrays.items():
        if array.size == 0:
            raise ValueError(f"series {name!r} is empty")
    if len(arrays) > len(GLYPHS):
        raise ValueError(f"at most {len(GLYPHS)} series supported")

    lo = min(float(array.min()) for array in arrays.values())
    hi = max(float(array.max()) for array in arrays.values())
    grid = [[" "] * width for _ in range(height)]

    for (name, array), glyph in zip(arrays.items(), GLYPHS):
        # Resample each series onto the plot columns.
        positions = np.linspace(0, array.size - 1, num=width)
        resampled = np.interp(positions, np.arange(array.size), array)
        rows = _scale(resampled, lo, hi, height)
        for column, row in enumerate(rows):
            grid[height - 1 - row][column] = glyph

    max_x = max(array.size for array in arrays.values()) - 1
    y_labels = [f"{hi:,.0f}", f"{(lo + hi) / 2:,.0f}", f"{lo:,.0f}"]
    label_width = max(len(label) for label in y_labels)

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_labels[0]
        elif row_index == height // 2:
            label = y_labels[1]
        elif row_index == height - 1:
            label = y_labels[2]
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    lines.append(f"{' ' * label_width}  0{x_label.center(width - 8)}{max_x}")
    legend = "  ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(arrays.items(), GLYPHS)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A one-line eight-level sparkline (for compact summaries)."""
    levels = "▁▂▃▄▅▆▇█"
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("nothing to plot")
    positions = np.linspace(0, array.size - 1, num=min(width, array.size))
    resampled = np.interp(positions, np.arange(array.size), array)
    rows = _scale(resampled, float(array.min()), float(array.max()), len(levels))
    return "".join(levels[row] for row in rows)
