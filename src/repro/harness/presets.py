"""Paper parameter presets, one per experiment (Section VI-A).

Shared defaults: α ∈ {1.5, 5, 10}, β = 2, τ = 0, N_min = 50%·|I_j|,
N_max = 80%, PoW formation mean 600 s, PBFT consensus mean 54.5 s.
``fast`` variants shrink the iteration budgets so the full suite stays
laptop-scale; the paper parameters themselves are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class FigurePreset:
    """One experiment's workload and algorithm parameters."""

    figure: str
    description: str
    num_committees: int = 500
    capacity: int = 500_000
    alpha: float = 1.5
    gamma: int = 10
    se_iterations: int = 6_000
    baseline_iterations: int = 6_000
    convergence_window: int = 1_500
    seeds: Tuple[int, ...] = (1,)
    extras: Dict[str, object] = field(default_factory=dict)


PRESETS: Dict[str, FigurePreset] = {
    "fig02": FigurePreset(
        figure="fig02",
        description="Two-phase latency vs network size + CDFs (Elastico measurement)",
        extras={
            "network_sizes": (100, 200, 400, 700, 1000),
            "epochs_per_size": 2,
            "committee_size": 8,
            "cdf_network_size": 400,
        },
    ),
    "fig08": FigurePreset(
        figure="fig08",
        description="SE convergence under Gamma in {1, 5, 10, 25}",
        num_committees=500,
        capacity=500_000,
        alpha=1.5,
        se_iterations=4_000,
        convergence_window=4_000,  # fixed budget: the figure plots the whole trace
        extras={"gammas": (1, 5, 10, 25)},
    ),
    "fig09a": FigurePreset(
        figure="fig09a",
        description="Dynamic leave (failure) + rejoin within one epoch",
        num_committees=50,
        capacity=40_000,
        alpha=1.5,
        gamma=1,
        se_iterations=3_000,
        convergence_window=3_000,
        extras={"fail_at": 1_000, "recover_at": 2_000},
    ),
    "fig09b": FigurePreset(
        figure="fig09b",
        description="Consecutive committee joins",
        num_committees=100,
        capacity=80_000,
        alpha=1.5,
        gamma=1,
        se_iterations=6_000,
        convergence_window=6_000,
        extras={"num_initial": 40, "join_start": 500, "join_spacing": 120},
    ),
    "fig10": FigurePreset(
        figure="fig10",
        description="Valuable Degree of SE vs SA / DP / WOA",
        num_committees=500,
        capacity=500_000,
        alpha=1.5,
        gamma=25,
        se_iterations=6_000,
        baseline_iterations=6_000,
        seeds=(1, 2, 3, 4, 5),
    ),
    "fig11": FigurePreset(
        figure="fig11",
        description="Convergence while varying |I_j| in {500, 800, 1000}",
        alpha=1.5,
        gamma=10,
        se_iterations=8_000,
        baseline_iterations=8_000,
        convergence_window=8_000,
        extras={"sizes": (500, 800, 1000), "capacity_per_committee": 1000},
    ),
    "fig12": FigurePreset(
        figure="fig12",
        description="Convergence while varying alpha in {1.5, 5, 10}",
        num_committees=50,
        capacity=50_000,
        gamma=25,
        se_iterations=3_000,
        baseline_iterations=3_000,
        convergence_window=3_000,
        extras={"alphas": (1.5, 5.0, 10.0)},
    ),
    "fig13": FigurePreset(
        figure="fig13",
        description="Distribution of converged utilities across trials",
        num_committees=50,
        capacity=50_000,
        gamma=25,
        se_iterations=2_500,
        baseline_iterations=2_500,
        seeds=tuple(range(1, 13)),
        extras={"alphas": (1.5, 5.0, 10.0)},
    ),
    "fig14": FigurePreset(
        figure="fig14",
        description="Online execution with consecutive joins, varying alpha",
        num_committees=50,
        capacity=40_000,
        gamma=25,
        se_iterations=5_000,
        baseline_iterations=5_000,
        convergence_window=5_000,
        extras={"alphas": (1.5, 5.0, 10.0), "num_initial": 17, "join_start": 200, "join_spacing": 150},
    ),
    "eth2scale": FigurePreset(
        figure="eth2scale",
        description="Eth2-scale epochs: chunked kernels + streaming crosslinks, nodes vs wall/RSS",
        num_committees=1024,  # SHARD_COUNT = 2**10
        capacity=1_024_000,
        gamma=10,
        se_iterations=1_500,
        convergence_window=1_500,
        extras={
            # 2**10 shards x MAX_PERIOD_COMMITTEE_SIZE = 2**7 members at the top
            "network_sizes": (8_192, 32_768, 131_072),
            "committee_size": 128,
            "capacity_per_committee": 1000,
            "max_batch_bytes": 268_435_456,
        },
    ),
    "theory_mixing": FigurePreset(
        figure="theory_mixing",
        description="Theorem 1 mixing-time bounds vs empirical mixing",
        num_committees=8,
        capacity=12_000,
        extras={"cardinality": 3, "betas": (0.0005, 0.001, 0.002), "epsilon": 0.05},
    ),
    "theory_failure": FigurePreset(
        figure="theory_failure",
        description="Lemma 4 / Theorem 2 failure perturbation bounds",
        num_committees=10,
        capacity=15_000,
        extras={"betas": (0.0005, 0.002, 0.01)},
    ),
}


def list_presets() -> List[str]:
    """Sorted preset names for the CLI registry."""
    return sorted(PRESETS)
