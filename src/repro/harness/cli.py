"""``mvcom`` command-line entry point.

Usage::

    mvcom list                  # available experiments
    mvcom fig08                 # run one figure, print its table, write CSV
    mvcom fig02 --chain-engine fastpath   # closed-form chain substrate
    mvcom fig10 --parallel --sweep-workers 4  # byte-identical sweep fan-out
    mvcom all                   # run every figure (slow)
    mvcom lint [paths...]       # static analysis (rules MV001-MV104)
    mvcom lint --format sarif   # SARIF 2.1.0 report for CI upload
    mvcom lint --fix --dry-run  # preview MV004/MV005 autofixes
    mvcom lint --graph          # dump the call/stream graph
    mvcom solve --trace t.jsonl # one traced SE solve + final PBFT round
    mvcom solve --engine parallel --workers 4   # byte-identical pool run
    mvcom trace summary t.jsonl # render a text report from a trace file
    mvcom trace metrics t.jsonl # streaming aggregate: p50/p99, rates, SLOs
    mvcom trace export t.jsonl --format perfetto --out t.perfetto.json
    mvcom trace diff a.jsonl b.jsonl --fail-above 5  # regression gate
    mvcom storm --seed 13       # churn-storm fault injection (repro.faultinject)
    mvcom storm --replay r.json # replay a shrunk storm reproducer
    mvcom eth2scale             # nodes -> {epoch wall, peak RSS, SE wall} curve
    mvcom eth2scale --network-sizes 8192,32768 --committee-size 128
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.chain.params import CHAIN_ENGINE_NAMES
from repro.harness import experiments
from repro.harness.parallel import SWEEP_FIGURES, resolve_sweep_workers
from repro.harness.presets import PRESETS, list_presets
from repro.harness.report import render_table, sample_trace, traces_table, traces_to_rows, write_csv
from repro.harness.textplot import line_plot
from repro.harness.artifacts import write_artifact

RUNNERS: Dict[str, Callable[[], dict]] = {
    "fig02": experiments.run_fig02_two_phase_latency,
    "fig08": experiments.run_fig08_parallel_threads,
    "fig09": experiments.run_fig09_dynamic_events,
    "fig10": experiments.run_fig10_valuable_degree,
    "fig11": experiments.run_fig11_vary_committees,
    "fig12": experiments.run_fig12_vary_alpha,
    "fig13": experiments.run_fig13_utility_distribution,
    "fig14": experiments.run_fig14_online_joining,
    "theory_mixing": experiments.run_theory_mixing_time,
    "theory_failure": experiments.run_theory_failure,
}


def runner_kwargs(name: str, args) -> dict:
    """Per-figure keyword arguments derived from the CLI flags.

    Only fig02 understands ``--chain-engine`` and only the sweep figures
    (fig10-fig14) understand ``--parallel``/``--sweep-workers``; every
    other runner keeps its zero-argument call.
    """
    kwargs: Dict[str, object] = {}
    if name == "fig02" and args.chain_engine is not None:
        kwargs["chain_engine"] = args.chain_engine
    if name in SWEEP_FIGURES:
        workers, warning = resolve_sweep_workers(args.sweep_workers)
        if args.parallel and warning is not None:
            print(warning, file=sys.stderr)
        kwargs["parallel"] = args.parallel
        kwargs["sweep_workers"] = workers
    return kwargs


def print_result(name: str, result: dict) -> None:
    """Pretty-print one experiment's tables, plots and traces."""
    print(f"=== {name}: {PRESETS.get(name, PRESETS.get(name + 'a', None)) and PRESETS[name if name in PRESETS else name + 'a'].description} ===")
    if "rows" in result:
        print(render_table(result["rows"]))
        write_csv(f"{name}.csv", result["rows"])
    if "traces" in result:
        print(line_plot(result["traces"], title=f"{name} convergence"))
        print(traces_table(result["traces"], title=f"{name} convergence traces"))
        write_csv(f"{name}_traces.csv", traces_to_rows(result["traces"]))
    if "panels" in result:
        for panel, content in result["panels"].items():
            if "traces" in content:
                print(traces_table(content["traces"], title=f"{name} {panel}"))
            if "converged" in content:
                rows = [{"algorithm": k, "converged_utility": v} for k, v in content["converged"].items()]
                print(render_table(rows, title=f"{name} {panel} converged"))
    if "converged" in result and "panels" not in result:
        rows = [{"series": k, "converged_utility": v} for k, v in result["converged"].items()]
        print(render_table(rows))
    if name == "fig09":
        for part in ("leave_rejoin", "consecutive_joins"):
            trace = result[part]["current_trace"]
            print(line_plot({"current utility": trace}, title=f"{name} {part}"))
            print(render_table(sample_trace(trace), title=f"{name} {part} current-utility trace"))
            print(f"  events: {result[part]['events']}")
    print()


def run_traced_solve(args) -> int:
    """``mvcom solve``: one telemetry-instrumented SE solve + final PBFT round."""
    from repro.harness.textplot import sparkline
    from repro.harness.tracing import traced_solve
    from repro.obs.summary import summarize_records

    run = traced_solve(
        num_committees=args.committees,
        capacity=args.capacity,
        gamma=args.gamma,
        seed=args.seed,
        max_iterations=args.iterations,
        trace_path=args.trace,
        profile=args.profile,
        top_n=args.top,
        engine=args.engine,
        num_workers=args.workers,
        chain_engine=args.chain_engine or "des",
        resources=args.resources,
    )
    result = run.result
    print(
        f"solve: {args.committees} committees, Gamma={args.gamma}, "
        f"seed={args.seed}, engine={args.engine}"
    )
    print(
        f"  utility={result.best_utility:.2f}  iterations={result.iterations}"
        f"  converged={result.converged}"
    )
    print(f"  utility trace: {sparkline(result.utility_trace)}")
    if run.pbft.committed:
        print(f"  final PBFT committed in {run.pbft.latency:.3f}s (sim time)")
    else:
        print("  final PBFT round stalled")
    print()
    print(summarize_records(run.records, top_spans=args.top))
    if args.trace:
        print(f"\n[trace written to {args.trace}]")
    return 0


def run_trace_summary(path: str) -> int:
    """``mvcom trace summary PATH``: render a text report from a JSONL trace."""
    from repro.obs.summary import summarize_file

    print(summarize_file(path))
    return 0


def _metric_rows(snapshot: dict) -> list:
    """Flatten an aggregate snapshot into table rows (sorted series)."""
    rows = []
    for key, stats in snapshot["series"].items():
        kind, _, rest = key.partition("|")
        name, _, tag = rest.partition("|")
        row = {"kind": kind, "metric": name, "tag": tag, "count": stats["count"]}
        for stat in ("mean", "p50", "p90", "p99", "total", "rate", "last"):
            if stat in stats:
                row[stat] = round(float(stats[stat]), 6)
        rows.append(row)
    return rows


def run_trace_metrics(path: str, args) -> int:
    """``mvcom trace metrics PATH``: streaming aggregate report (+ SLOs)."""
    from repro.obs.metrics import MetricsAggregator
    from repro.obs.slo import SloTracker, load_slo_specs
    from repro.obs.sinks import iter_jsonl

    aggregator = MetricsAggregator()
    tracker = None
    if args.slo:
        specs = load_slo_specs()
        tracker = SloTracker(specs, aggregator)
        print(f"SLO specs loaded: {len(specs)}")
    for record in iter_jsonl(path):
        aggregator.emit(record)
        if tracker is not None:
            tracker.emit(record)
    snapshot = aggregator.snapshot()
    print(f"trace metrics: {snapshot['records']} records, "
          f"{len(snapshot['series'])} series")
    print(render_table(_metric_rows(snapshot), title="Aggregated metric series"))
    if args.out:
        aggregator.write_snapshot(args.out)
        print(f"[aggregate snapshot written to {args.out}]")
    if tracker is not None:
        violations = tracker.check()
        if violations:
            print(render_table(violations, title="SLO violations"))
            return 1
        print("SLOs: all passing")
    return 0


def run_trace_export(path: str, args, parser) -> int:
    """``mvcom trace export PATH --format {perfetto,openmetrics}``."""
    if args.format is None:
        parser.error("trace export requires --format {perfetto,openmetrics}")
    from repro.obs.sinks import iter_jsonl

    if args.format == "perfetto":
        from repro.obs.export import write_perfetto

        out = args.out or (path + ".perfetto.json")
        written = write_perfetto(iter_jsonl(path), out)
        print(f"[{written} trace events written to {out}]")
    else:
        from repro.obs.export import write_openmetrics
        from repro.obs.metrics import MetricsAggregator

        out = args.out or (path + ".prom")
        aggregator = MetricsAggregator.from_jsonl(path)
        write_openmetrics(aggregator, out)
        print(f"[{len(aggregator.snapshot()['series'])} series exposed to {out}]")
    return 0


def run_trace_diff(baseline_path: str, candidate_path: str, args) -> int:
    """``mvcom trace diff A B``: per-metric deltas with a regression gate.

    ``A``/``B`` are JSONL traces or aggregate snapshots (``trace metrics
    --out``); a relative delta above ``--fail-above`` percent (or a series
    present on only one side) exits non-zero.
    """
    from repro.obs.metrics import diff_snapshots, load_aggregate

    baseline = load_aggregate(baseline_path)
    candidate = load_aggregate(candidate_path)
    rows, breaches = diff_snapshots(
        baseline,
        candidate,
        threshold=args.fail_above,
        include_wall=args.include_wall,
    )
    changed = [row for row in rows if row["delta_pct"] > 0]
    print(
        f"trace diff: {len(rows)} compared stats, {len(changed)} changed, "
        f"{len(breaches)} above the {args.fail_above:g}% threshold"
    )
    if changed:
        display = []
        for row in sorted(changed, key=lambda entry: -entry["delta_pct"])[: args.top]:
            row = dict(row)
            row["delta_pct"] = round(row["delta_pct"], 4)
            if isinstance(row["baseline"], float):
                row["baseline"] = round(row["baseline"], 6)
                row["candidate"] = round(row["candidate"], 6)
            display.append(row)
        print(render_table(display, title="Largest per-metric deltas"))
    else:
        print("zero deltas: runs aggregate identically")
    if breaches:
        print(f"REGRESSION: {len(breaches)} stat(s) breached the threshold")
        return 1
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        # Forward everything after 'lint' to the analyzer's own parser so
        # --format/--fix/--graph/--baseline work without duplicating flags.
        from repro.analysis.__main__ import main as lint_main

        return lint_main(argv[1:])

    parser = argparse.ArgumentParser(prog="mvcom", description="MVCom reproduction experiments")
    parser.add_argument(
        "experiment",
        choices=sorted(RUNNERS)
        + ["all", "eth2scale", "list", "lint", "serve", "solve", "storm", "trace"],
        help="figure to run, 'lint' for static analysis, 'solve' for a traced "
        "SE run, 'serve' for the warm-started steady-state service loop, "
        "'storm' for churn-storm fault injection, 'eth2scale' for "
        "the chunked-kernel scaling bench, or 'trace summary PATH' to "
        "inspect a trace file",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="paths to lint (lint) or '{summary,metrics,export,diff} PATH...' (trace)",
    )
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="solve: write the telemetry stream to this JSONL file")
    parser.add_argument("--profile", action="store_true",
                        help="solve: run the solver under cProfile, emit hotspots")
    parser.add_argument("--committees", type=int, default=100,
                        help="solve: number of arrived committees (default 100)")
    parser.add_argument("--capacity", type=int, default=None,
                        help="solve: final-block capacity (default 1000 per committee)")
    parser.add_argument("--gamma", type=int, default=10,
                        help="solve: SE executor replicas (default 10)")
    parser.add_argument("--seed", type=int, default=0,
                        help="solve: workload + solver seed (default 0)")
    parser.add_argument("--iterations", type=int, default=2000,
                        help="solve: SE iteration budget (default 2000)")
    parser.add_argument("--engine",
                        choices=["auto", "serial", "parallel", "vectorized"],
                        default="auto",
                        help="solve: SE execution engine (default auto picks "
                        "the fastest safe path from the racing-thread count, "
                        "Gamma, and cpu_count; parallel is byte-identical "
                        "across a process pool, vectorized is the batched "
                        "distributional kernel)")
    parser.add_argument("--workers", type=int, default=4,
                        help="solve: process-pool size for --engine parallel "
                        "(default 4, clamped to cpu_count)")
    parser.add_argument("--chain-engine", choices=list(CHAIN_ENGINE_NAMES),
                        default=None,
                        help="fig02/solve: chain substrate implementation "
                        "(des reference simulation or the fastpath "
                        "closed-form kernel; default des)")
    parser.add_argument("--parallel", action="store_true",
                        help="fig10-fig14: fan trial loops over the shared "
                        "process pool; artifacts stay byte-identical to the "
                        "serial runner")
    parser.add_argument("--sweep-workers", default="auto",
                        help="fig10-fig14: process-pool size for --parallel; "
                        "'auto' (the default) stays serial on boxes with "
                        "<= 2 cpus, where the recorded bench shows the pool "
                        "losing")
    parser.add_argument("--top", type=int, default=10,
                        help="solve/trace: rows per summary table (default 10)")
    parser.add_argument("--events", type=int, default=200,
                        help="storm: number of churn events to generate (default 200)")
    parser.add_argument("--epochs", type=int, default=None,
                        help="storm: multi-epoch chain loop epochs (default 1); "
                        "serve: epochs to serve (default 8)")
    parser.add_argument("--rate", type=float, default=1.3,
                        help="serve: trace blocks fed per live committee per "
                        "epoch (default 1.3)")
    parser.add_argument("--churn", type=float, default=0.15,
                        help="serve: fraction of the population replaced per "
                        "epoch (default 0.15)")
    parser.add_argument("--growth", type=int, default=0,
                        help="serve: net committees added (+) or removed (-) "
                        "per epoch (default 0)")
    parser.add_argument("--warm", dest="cold", action="store_false",
                        default=False,
                        help="serve: warm-start each epoch from the previous "
                        "solve (the default)")
    parser.add_argument("--cold", dest="cold", action="store_true",
                        help="serve: fresh per-epoch solver, byte-identical "
                        "to today's standalone solve() path")
    parser.add_argument("--shrink", action="store_true",
                        help="storm: on violation, shrink to a minimal reproducer")
    parser.add_argument("--strict", action="store_true",
                        help="storm: additionally arm the strict-n-min drill invariant")
    parser.add_argument("--replay", metavar="PATH", default=None,
                        help="storm: replay a reproducer JSON instead of generating")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="storm: shrunk-reproducer JSON path; trace "
                        "metrics/export: output file for the aggregate "
                        "snapshot / exported trace")
    parser.add_argument("--network-sizes", metavar="N,N,...", default=None,
                        help="eth2scale: comma-separated ascending node "
                        "counts (default 8192,32768,131072 from the preset)")
    parser.add_argument("--committee-size", type=int, default=None,
                        help="eth2scale: members per committee (default 128, "
                        "the beacon-chain MAX_PERIOD_COMMITTEE_SIZE)")
    parser.add_argument("--max-batch-bytes", type=int, default=None,
                        help="eth2scale: chunked-kernel scratch budget in "
                        "bytes (default 256 MiB)")
    parser.add_argument("--resources", action="store_true",
                        help="solve: emit the harness-only obs.resources "
                        "gauge (peak RSS + CPU times) at span close")
    parser.add_argument("--format", choices=["perfetto", "openmetrics"],
                        default=None, dest="format",
                        help="trace export: output format (Chrome/Perfetto "
                        "trace_event JSON or OpenMetrics textfile)")
    parser.add_argument("--slo", action="store_true",
                        help="trace metrics: evaluate [tool.repro.obs.slo] "
                        "specs from pyproject.toml; non-zero exit on violation")
    parser.add_argument("--fail-above", type=float, default=0.0, metavar="PCT",
                        help="trace diff: relative per-stat regression "
                        "threshold in percent (default 0: any delta fails)")
    parser.add_argument("--include-wall", action="store_true",
                        help="trace diff: also compare wall-clock span "
                        "series (machine-dependent; off by default)")
    args = parser.parse_args(argv)

    if args.experiment == "solve":
        if args.paths:
            parser.error(f"unexpected positional arguments for 'solve': {args.paths}")
        return run_traced_solve(args)

    if args.experiment == "trace":
        verb = args.paths[0] if args.paths else None
        if verb == "summary" and len(args.paths) == 2:
            return run_trace_summary(args.paths[1])
        if verb == "metrics" and len(args.paths) == 2:
            return run_trace_metrics(args.paths[1], args)
        if verb == "export" and len(args.paths) == 2:
            return run_trace_export(args.paths[1], args, parser)
        if verb == "diff" and len(args.paths) == 3:
            return run_trace_diff(args.paths[1], args.paths[2], args)
        parser.error(
            "usage: mvcom trace summary PATH | trace metrics PATH "
            "[--slo] [--out AGG.json] | trace export PATH --format "
            "{perfetto,openmetrics} [--out FILE] | trace diff A B "
            "[--fail-above PCT]"
        )

    if args.experiment == "storm":
        if args.paths:
            parser.error(f"unexpected positional arguments for 'storm': {args.paths}")
        from repro.harness.storms import run_storm_cli

        return run_storm_cli(args)

    if args.experiment == "serve":
        if args.paths:
            parser.error(f"unexpected positional arguments for 'serve': {args.paths}")
        from repro.harness.serve import run_serve_cli

        return run_serve_cli(args)

    if args.experiment == "eth2scale":
        if args.paths:
            parser.error(f"unexpected positional arguments for 'eth2scale': {args.paths}")
        from repro.harness.eth2scale import run_eth2scale_cli

        return run_eth2scale_cli(args)

    if args.paths:
        parser.error(f"unexpected positional arguments for {args.experiment!r}: {args.paths}")

    if args.trace or args.profile:
        parser.error("--trace/--profile only apply to the 'solve' subcommand")

    if args.experiment == "list":
        for name in list_presets():
            print(f"{name:15s} {PRESETS[name].description}")
        return 0

    names = sorted(RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        result = RUNNERS[name](**runner_kwargs(name, args))
        print_result(name, result)
        preset = PRESETS.get(name) or PRESETS.get(name + "a")
        artifact_path = write_artifact(name, result, preset=preset)
        print(f"[{name} finished in {time.time() - started:.1f}s; artifact: {artifact_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
