"""``mvcom`` command-line entry point.

Usage::

    mvcom list                  # available experiments
    mvcom fig08                 # run one figure, print its table, write CSV
    mvcom all                   # run every figure (slow)
    mvcom lint [paths...]       # static analysis (rules MV001-MV006)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.harness import experiments
from repro.harness.presets import PRESETS, list_presets
from repro.harness.report import render_table, sample_trace, traces_table, traces_to_rows, write_csv
from repro.harness.textplot import line_plot
from repro.harness.artifacts import write_artifact

RUNNERS: Dict[str, Callable[[], dict]] = {
    "fig02": experiments.run_fig02_two_phase_latency,
    "fig08": experiments.run_fig08_parallel_threads,
    "fig09": experiments.run_fig09_dynamic_events,
    "fig10": experiments.run_fig10_valuable_degree,
    "fig11": experiments.run_fig11_vary_committees,
    "fig12": experiments.run_fig12_vary_alpha,
    "fig13": experiments.run_fig13_utility_distribution,
    "fig14": experiments.run_fig14_online_joining,
    "theory_mixing": experiments.run_theory_mixing_time,
    "theory_failure": experiments.run_theory_failure,
}


def print_result(name: str, result: dict) -> None:
    """Pretty-print one experiment's tables, plots and traces."""
    print(f"=== {name}: {PRESETS.get(name, PRESETS.get(name + 'a', None)) and PRESETS[name if name in PRESETS else name + 'a'].description} ===")
    if "rows" in result:
        print(render_table(result["rows"]))
        write_csv(f"{name}.csv", result["rows"])
    if "traces" in result:
        print(line_plot(result["traces"], title=f"{name} convergence"))
        print(traces_table(result["traces"], title=f"{name} convergence traces"))
        write_csv(f"{name}_traces.csv", traces_to_rows(result["traces"]))
    if "panels" in result:
        for panel, content in result["panels"].items():
            if "traces" in content:
                print(traces_table(content["traces"], title=f"{name} {panel}"))
            if "converged" in content:
                rows = [{"algorithm": k, "converged_utility": v} for k, v in content["converged"].items()]
                print(render_table(rows, title=f"{name} {panel} converged"))
    if "converged" in result and "panels" not in result:
        rows = [{"series": k, "converged_utility": v} for k, v in result["converged"].items()]
        print(render_table(rows))
    if name == "fig09":
        for part in ("leave_rejoin", "consecutive_joins"):
            trace = result[part]["current_trace"]
            print(line_plot({"current utility": trace}, title=f"{name} {part}"))
            print(render_table(sample_trace(trace), title=f"{name} {part} current-utility trace"))
            print(f"  events: {result[part]['events']}")
    print()


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="mvcom", description="MVCom reproduction experiments")
    parser.add_argument(
        "experiment",
        choices=sorted(RUNNERS) + ["all", "list", "lint"],
        help="figure to run, or 'lint' for static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="paths to lint (lint subcommand only; default: src)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "lint":
        from repro.analysis.__main__ import main as lint_main

        return lint_main(args.paths or ["src"])

    if args.paths:
        parser.error(f"unexpected positional arguments for {args.experiment!r}: {args.paths}")

    if args.experiment == "list":
        for name in list_presets():
            print(f"{name:15s} {PRESETS[name].description}")
        return 0

    names = sorted(RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        result = RUNNERS[name]()
        print_result(name, result)
        preset = PRESETS.get(name) or PRESETS.get(name + "a")
        artifact_path = write_artifact(name, result, preset=preset)
        print(f"[{name} finished in {time.time() - started:.1f}s; artifact: {artifact_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
