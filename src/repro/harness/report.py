"""Reporting: aligned ASCII tables and CSV artifacts.

The environment has no plotting stack, so every figure is emitted as (a)
an aligned table of the series the paper plots and (b) a CSV under
``results/`` for external plotting.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional, Sequence

import numpy as np

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))), "results")


def render_table(rows: Sequence[dict], title: Optional[str] = None) -> str:
    """Render dict-rows as an aligned ASCII table (stable column order)."""
    rows = list(rows)
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {col: len(col) for col in columns}
    rendered_rows = []
    for row in rows:
        rendered = {col: _fmt(row.get(col, "")) for col in columns}
        rendered_rows.append(rendered)
        for col in columns:
            widths[col] = max(widths[col], len(rendered[col]))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for rendered in rendered_rows:
        lines.append("  ".join(rendered[col].ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.4g}"
    return str(value)


def sample_trace(trace: Sequence[float], points: int = 12) -> List[dict]:
    """Downsample a convergence trace to ``points`` evenly spaced rows."""
    array = np.asarray(trace, dtype=np.float64)
    if array.size == 0:
        return []
    indices = np.unique(np.linspace(0, array.size - 1, num=min(points, array.size)).astype(int))
    return [{"iteration": int(i), "utility": float(array[i])} for i in indices]


def traces_table(traces: Dict[str, Sequence[float]], points: int = 12, title: str = "") -> str:
    """Render several aligned traces side by side (iterations as rows)."""
    aligned = {name: np.asarray(trace, dtype=np.float64) for name, trace in traces.items()}
    length = max(array.size for array in aligned.values())
    indices = np.unique(np.linspace(0, length - 1, num=min(points, length)).astype(int))
    rows = []
    for i in indices:
        row = {"iteration": int(i)}
        for name, array in aligned.items():
            row[name] = float(array[min(i, array.size - 1)])
        rows.append(row)
    return render_table(rows, title=title)


def write_csv(filename: str, rows: Sequence[dict], results_dir: Optional[str] = None) -> str:
    """Write dict-rows to ``results/<filename>``; returns the path."""
    rows = list(rows)
    directory = results_dir or RESULTS_DIR
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, filename)
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def traces_to_rows(traces: Dict[str, Sequence[float]]) -> List[dict]:
    """Long-format rows (iteration, series, value) for CSV export."""
    rows = []
    for name, trace in traces.items():
        for iteration, value in enumerate(np.asarray(trace, dtype=np.float64)):
            rows.append({"iteration": iteration, "series": name, "value": float(value)})
    return rows
