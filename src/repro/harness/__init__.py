"""Experiment harness: one runner per paper figure, plus reporting.

* :mod:`repro.harness.presets` -- the paper's parameter presets per figure;
* :mod:`repro.harness.experiments` -- experiment implementations returning
  plain-dict series (the same rows/series the paper plots);
* :mod:`repro.harness.report` -- aligned ASCII tables and CSV writers;
* :mod:`repro.harness.cli` -- ``mvcom <figure>`` command-line entry point.
"""

from repro.harness.presets import FigurePreset, PRESETS
from repro.harness.experiments import (
    run_fig02_two_phase_latency,
    run_fig08_parallel_threads,
    run_fig09_dynamic_events,
    run_fig10_valuable_degree,
    run_fig11_vary_committees,
    run_fig12_vary_alpha,
    run_fig13_utility_distribution,
    run_fig14_online_joining,
    run_theory_failure,
    run_theory_mixing_time,
)
from repro.harness.report import render_table, write_csv
from repro.harness.sweeps import grid_sweep, parameter_grid
from repro.harness.textplot import line_plot, sparkline
from repro.harness.artifacts import read_artifact, write_artifact

__all__ = [
    "FigurePreset",
    "PRESETS",
    "run_fig02_two_phase_latency",
    "run_fig08_parallel_threads",
    "run_fig09_dynamic_events",
    "run_fig10_valuable_degree",
    "run_fig11_vary_committees",
    "run_fig12_vary_alpha",
    "run_fig13_utility_distribution",
    "run_fig14_online_joining",
    "run_theory_failure",
    "run_theory_mixing_time",
    "render_table",
    "write_csv",
    "grid_sweep",
    "parameter_grid",
    "line_plot",
    "sparkline",
    "read_artifact",
    "write_artifact",
]
