"""Generic parameter-sweep utilities.

The figure experiments hard-code the paper's sweeps; downstream users
typically want their own ("what happens at N_min = 70%?", "how does SE
behave when shards are 10x larger?").  :func:`grid_sweep` runs a scheduler
factory over the Cartesian product of workload/algorithm parameter grids
and returns flat result rows ready for :mod:`repro.harness.report`.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.problem import EpochInstance
from repro.core.se import SEConfig, StochasticExploration
from repro.data.workload import WorkloadConfig, generate_epoch_workload
from repro.metrics.summary import summarize_schedule


def parameter_grid(axes: Dict[str, Sequence]) -> List[dict]:
    """Cartesian product of named parameter axes.

    >>> parameter_grid({"a": [1, 2], "b": ["x"]})
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        return [{}]
    names = list(axes)
    for name, values in axes.items():
        if not values:
            raise ValueError(f"axis {name!r} has no values")
    return [dict(zip(names, combo)) for combo in itertools.product(*axes.values())]


def grid_sweep(
    base_workload: WorkloadConfig,
    workload_axes: Optional[Dict[str, Sequence]] = None,
    se_axes: Optional[Dict[str, Sequence]] = None,
    base_se: SEConfig = SEConfig(),
    extra_metrics: Optional[Callable[[EpochInstance, object], dict]] = None,
) -> List[dict]:
    """Run SE over every combination of workload and SE parameter overrides.

    Returns one flat row per combination with the workload/SE overrides,
    the schedule summary, and any ``extra_metrics(instance, se_result)``.
    """
    rows: List[dict] = []
    for workload_override in parameter_grid(workload_axes or {}):
        workload_config = replace(base_workload, **workload_override)
        workload = generate_epoch_workload(workload_config)
        for se_override in parameter_grid(se_axes or {}):
            se_config = replace(base_se, **se_override)
            result = StochasticExploration(se_config).solve(workload.instance)
            summary = summarize_schedule(workload.instance, result.best_mask, "SE")
            row = {**workload_override, **se_override, **summary.as_row(),
                   "iterations": result.iterations, "converged": result.converged}
            if extra_metrics is not None:
                row.update(extra_metrics(workload.instance, result))
            rows.append(row)
    return rows


def best_row(rows: Iterable[dict], key: str = "utility") -> dict:
    """The sweep row maximising ``key``."""
    rows = list(rows)
    if not rows:
        raise ValueError("empty sweep")
    return max(rows, key=lambda row: row[key])
