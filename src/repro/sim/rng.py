"""Named, reproducible random-number streams.

Every stochastic subsystem (trace generation, PoW latency, PBFT latency, SE
timers, baseline algorithms, ...) draws from its *own* named stream derived
from one root seed.  This gives two properties the experiments rely on:

* **Reproducibility** -- a fixed root seed reproduces every figure exactly.
* **Isolation** -- adding a draw in one subsystem does not shift the random
  sequence seen by any other subsystem, so ablations stay comparable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so the mapping is stable across Python versions and
    processes (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_seed(root_seed: int, name: str) -> int:
    """Public alias for the stable 64-bit child-seed derivation."""
    return _derive_seed(root_seed, name)


def spawn_rng(root_seed: int, name: str) -> np.random.Generator:
    """Create an independent generator for stream ``name``."""
    return np.random.default_rng(_derive_seed(root_seed, name))


def spawn_fast_rng(root_seed: int, name: str) -> random.Random:
    """Create an independent stdlib ``random.Random`` for stream ``name``.

    Scalar-draw hot paths (the SE timer race) use the Mersenne Twister's
    C-level ``random()``, which is ~10x cheaper per call than a NumPy
    ``Generator`` scalar draw.  Seeding it through the same SHA-256
    derivation keeps the named-stream isolation guarantees; this is the
    only sanctioned way to obtain a stdlib RNG (lint rule MV001 flags
    direct ``random.*`` construction everywhere else).
    """
    return random.Random(_derive_seed(root_seed, name))


def philox_key(rng: np.random.Generator) -> np.ndarray:
    """Draw a 128-bit Philox key (two ``uint64`` words) from ``rng``.

    Kernels that need *random-access* randomness — chunked batch kernels
    addressing each work item by absolute counter offset — draw one
    fixed-size key from their sequential stream and derive everything
    else through :func:`counter_rng`.  The consumption is two ``uint64``
    words regardless of the batch or chunk shape, so chunking never
    shifts the calling stream's position.
    """
    return rng.integers(0, 2**64, size=2, dtype=np.uint64)


def counter_rng(key: np.ndarray, counter_block: int) -> np.random.Generator:
    """A generator positioned at absolute Philox counter ``counter_block``.

    Philox-4x64 emits four ``uint64`` words (four ``float64`` draws) per
    counter increment, so a consumer whose per-item draw budget is padded
    to a multiple of four can open a generator exactly at item
    boundaries: ``counter_rng(key, k * budget // 4)`` reproduces the same
    bytes whether items are drawn singly, in chunks, or all at once.
    This is the sanctioned constructor for counter-addressed streams
    (lint rule MV001 bans raw ``np.random.*`` construction elsewhere).
    """
    if counter_block < 0:
        raise ValueError("counter_block must be non-negative")
    return np.random.Generator(np.random.Philox(key=key, counter=int(counter_block)))


class RandomStreams:
    """A registry of named random streams sharing one root seed.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("pow")
    >>> b = streams.get("pbft")
    >>> a is streams.get("pow")
    True
    >>> float(a.random()) != float(b.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            self._streams[name] = spawn_rng(self.seed, name)
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Create a child registry whose streams are independent of this one."""
        return RandomStreams(_derive_seed(self.seed, f"fork:{name}"))

    def reset(self) -> None:
        """Drop all streams so the next ``get`` restarts each sequence."""
        self._streams.clear()
