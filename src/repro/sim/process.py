"""Generator-based processes on top of the event engine.

A :class:`Process` wraps a Python generator.  The generator models a
simulated activity by yielding:

* :class:`Timeout` -- suspend for a virtual-time delay,
* :class:`WaitEvent` -- suspend until an :class:`repro.sim.engine.Event`
  fires (the event payload is sent back into the generator),
* another :class:`Process` -- suspend until that process finishes.

This is the same coroutine style as SimPy but small enough to test
exhaustively; the PBFT and PoW simulations in :mod:`repro.chain` are written
against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.sim.engine import Event, SimulationEngine, SimulationError


@dataclass
class Timeout:
    """Yielded by a process to sleep for ``delay`` virtual seconds."""

    delay: float


@dataclass
class WaitEvent:
    """Yielded by a process to wait for ``event`` to fire."""

    event: Event


class Process:
    """Drive a generator as a simulated process.

    The process starts immediately (its first segment runs when the engine
    reaches the current time).  When the generator returns, the process's
    :attr:`done` event fires with the generator's return value.
    """

    def __init__(self, engine: SimulationEngine, generator: Generator, name: str = "process"):
        self.engine = engine
        self.name = name
        self.generator = generator
        self.done = Event(name=f"{name}.done")
        self.result: object = None
        self.failed: Optional[BaseException] = None
        engine.schedule(0.0, lambda: self._advance(None))

    @property
    def finished(self) -> bool:
        """True once the generator returned."""
        return self.done.fired

    def _advance(self, value: object) -> None:
        try:
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self.result = stop.value
            self.done.fire(stop.value)
            return
        except BaseException as exc:  # surface failures through the handle
            self.failed = exc
            self.done.fire(exc)
            raise
        self._wait_on(yielded)

    def _wait_on(self, yielded: object) -> None:
        if isinstance(yielded, Timeout):
            self.engine.schedule(yielded.delay, lambda: self._advance(None))
        elif isinstance(yielded, WaitEvent):
            yielded.event.subscribe(lambda event: self._advance(event.payload))
        elif isinstance(yielded, Process):
            yielded.done.subscribe(lambda event: self._advance(event.payload))
        elif isinstance(yielded, Event):
            yielded.subscribe(lambda event: self._advance(event.payload))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )


def all_of(engine: SimulationEngine, events: list) -> Event:
    """Return an event that fires once every event in ``events`` has fired.

    The payload is the list of individual payloads in input order.  An empty
    list fires immediately (at the next engine step).
    """
    gate = Event(name="all_of")
    remaining = {id(event) for event in events if not event.fired}
    payloads: dict = {id(event): event.payload for event in events if event.fired}

    if not remaining:
        engine.schedule(0.0, lambda: gate.fire([payloads.get(id(e)) for e in events]))
        return gate

    def on_fire(event: Event) -> None:
        """Record one constituent event's payload."""
        payloads[id(event)] = event.payload
        remaining.discard(id(event))
        if not remaining:
            gate.fire([payloads.get(id(e)) for e in events])

    for event in events:
        if not event.fired:
            event.subscribe(on_fire)
    return gate


def any_of(engine: SimulationEngine, events: list) -> Event:
    """Return an event that fires as soon as any event in ``events`` fires."""
    gate = Event(name="any_of")

    def on_fire(event: Event) -> None:
        """Record one constituent event's payload."""
        if not gate.fired:
            gate.fire(event.payload)

    fired_already = [event for event in events if event.fired]
    if fired_already:
        engine.schedule(0.0, lambda: on_fire(fired_already[0]))
        return gate
    for event in events:
        event.subscribe(on_fire)
    return gate
