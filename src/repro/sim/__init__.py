"""Discrete-event simulation substrate.

This subpackage provides the minimal but complete event-driven simulation
machinery every other subsystem is built on:

* :class:`repro.sim.engine.SimulationEngine` -- a virtual-time event queue
  with deterministic tie-breaking.
* :class:`repro.sim.process.Process` -- generator-based simulated processes
  that ``yield`` delays or events.
* :mod:`repro.sim.rng` -- named, reproducible random-number streams so that
  independent subsystems never share (and therefore never perturb) each
  other's randomness.
"""

from repro.sim.engine import Event, SimulationEngine
from repro.sim.process import Process, Timeout, WaitEvent
from repro.sim.rng import RandomStreams, spawn_rng

__all__ = [
    "Event",
    "SimulationEngine",
    "Process",
    "Timeout",
    "WaitEvent",
    "RandomStreams",
    "spawn_rng",
]
