"""A small deterministic discrete-event simulation engine.

The engine keeps a priority queue of ``(time, sequence, callback)`` entries.
The ``sequence`` counter makes scheduling stable: two events scheduled for
the same virtual time always fire in the order they were scheduled, which
keeps whole-system runs bit-reproducible for a fixed seed.

The engine knows nothing about blockchains or Markov chains; the
:mod:`repro.chain` substrate and the SE scheduler both drive it through the
same three calls -- :meth:`SimulationEngine.schedule`,
:meth:`SimulationEngine.run`, and :attr:`SimulationEngine.now`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently (e.g. scheduling in the past)."""


@dataclass
class Event:
    """A one-shot event handle.

    Callbacks registered through :meth:`subscribe` run when the event is
    :meth:`fire`\\ d.  An event can carry an arbitrary ``payload`` and fires at
    most once; late subscribers to an already-fired event run immediately.
    """

    name: str = "event"
    fired: bool = False
    payload: object = None
    _subscribers: List[Callable[["Event"], None]] = field(default_factory=list)

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event fires."""
        if self.fired:
            callback(self)
            return
        self._subscribers.append(callback)

    def fire(self, payload: object = None) -> None:
        """Fire the event, delivering ``payload`` to every subscriber."""
        if self.fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self.fired = True
        self.payload = payload
        subscribers, self._subscribers = self._subscribers, []
        for callback in subscribers:
            callback(self)


class SimulationEngine:
    """Virtual-time event loop with deterministic ordering.

    Example
    -------
    >>> engine = SimulationEngine()
    >>> seen = []
    >>> _ = engine.schedule(2.0, lambda: seen.append(("b", engine.now)))
    >>> _ = engine.schedule(1.0, lambda: seen.append(("a", engine.now)))
    >>> engine.run()
    >>> seen
    [('a', 1.0), ('b', 2.0)]
    """

    def __init__(
        self,
        start_time: float = 0.0,
        telemetry: NullTelemetry = NULL_TELEMETRY,
    ) -> None:
        self._now = float(start_time)
        self._queue: list = []
        self._sequence = itertools.count()
        self._cancelled: set = set()
        self._processed = 0
        #: Injected observability hub (rule MV007); per-run loop stats are
        #: emitted as ``sim.run`` events, ``step`` stays un-instrumented.
        self.telemetry = telemetry

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled stubs)."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns an opaque handle usable with :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        handle = next(self._sequence)
        heapq.heappush(self._queue, (self._now + delay, handle, callback))
        return handle

    def schedule_at(self, when: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, callback)

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled callback.

        Cancelling an already-executed or unknown handle is a no-op; the
        engine lazily discards cancelled entries when they surface.
        """
        self._cancelled.add(handle)

    def step(self) -> bool:
        """Run the single next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            when, handle, callback = heapq.heappop(self._queue)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self._now = when
            self._processed += 1
            callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or ``max_events`` fire."""
        t_start = self._now
        fired = 0
        while self._queue:
            when = self._peek_time()
            if when is None:
                break
            if until is not None and when > until:
                self._now = until
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        if self.telemetry.enabled:
            self.telemetry.event(
                "sim.run",
                events=fired,
                t_start=t_start,
                t_end=self._now,
                pending=self.pending,
                processed_total=self._processed,
            )

    def _peek_time(self) -> Optional[float]:
        while self._queue:
            when, handle, _ = self._queue[0]
            if handle in self._cancelled:
                heapq.heappop(self._queue)
                self._cancelled.discard(handle)
                continue
            return when
        return None

    def advance_to(self, when: float) -> None:
        """Move the clock forward without executing anything (idle time)."""
        if when < self._now:
            raise SimulationError("cannot move the clock backwards")
        if self._queue and self._peek_time() is not None and self._peek_time() < when:
            raise SimulationError("cannot skip over pending events")
        self._now = when
