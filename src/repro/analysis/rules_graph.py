"""The MV1xx rule family: whole-program, flow-aware determinism checks.

Where the MV00x rules inspect one file at a time, these rules run over the
:class:`repro.analysis.graph.ProjectGraph` built once per lint run:

* **MV101 stream-collision detection** — every named-stream key site
  (``streams.get``, ``spawn_rng``/``spawn_fast_rng``, ``derive_seed``,
  f-string templates included) is extracted and two hazards are flagged:
  a key that is *constant across a loop* (each iteration consumes the same
  stream — the PR 3 shared ``"leave-reinit"`` bug class), and two distinct
  call sites whose key patterns can unify against the same registry.
* **MV102 wall-clock/entropy taint** — MV002 made interprocedural:
  replayable-package functions that *transitively* reach ``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid.uuid4``, ``secrets.*`` or a
  global/unseeded RNG through the project call graph are findings, with the
  offending call chain spelled out.
* **MV103 pickling reachability** — MV008 strengthened: callables and
  arguments crossing a ``submit``/``map`` process-pool boundary must
  resolve to module-level picklable objects; bound methods, locally-built
  callables, generator expressions and open file handles are findings.
* **MV104 telemetry-guard flow** — telemetry emission inside a loop body
  must sit behind a dominating ``telemetry.enabled`` guard (directly, via a
  hoisted alias such as ``self.traced = telemetry.enabled``, or via an
  early ``if not telemetry.enabled: return/continue``), so the NullTelemetry
  fast path stays near-zero-cost in hot loops.

Intentional exceptions are expressed inline (``# repro: ignore[MV101]``) or
through the checked-in lint baseline; see ``repro.analysis.baseline``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ProjectRule, register_rule
from repro.analysis.graph import (
    MODULE_BODY,
    CallSite,
    FunctionInfo,
    ModuleInfo,
    ProjectGraph,
    attribute_chain,
)
from repro.analysis.rules import (
    REPLAY_PACKAGES,
    RNG_MODULE,
    WallClockRule,
    _EXECUTOR_PACKAGES,
    _EXECUTOR_METHODS,
    _ImportMap,
    _global_rng_call,
)
from repro.analysis.streamkeys import (
    KeySite,
    collect_key_sites,
    patterns_can_unify,
)


def _in_package(normalized: str, suffixes: Sequence[str]) -> bool:
    probe = f"/{normalized}"
    for suffix in suffixes:
        if suffix.endswith("/"):
            if f"/{suffix}" in probe:
                return True
        elif normalized == suffix or normalized.endswith("/" + suffix):
            return True
    return False


def _project_diagnostic(
    rule, module_path: str, line: int, col: int, message: str
) -> Diagnostic:
    return Diagnostic(
        path=module_path,
        line=line,
        column=col,
        rule_id=rule.rule_id,
        message=message,
        severity=rule.severity,
    )


# ---------------------------------------------------------------------- #
# MV101
# ---------------------------------------------------------------------- #
@register_rule
class StreamCollisionRule(ProjectRule):
    """MV101: two call paths can consume the same named random stream."""

    rule_id = "MV101"
    description = (
        "named-stream keys must be unique per independent consumer: a key "
        "constant across a loop, or two call sites whose key patterns unify "
        "against one registry, collide (the PR 3 'leave-reinit' bug class)"
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Diagnostic]:
        sites = [s for s in collect_key_sites(graph) if not s.pattern.is_opaque]
        seen: Set[Tuple] = set()
        for site in sites:
            key = (site.path, site.line, site.col, site.pattern.display(), site.family)
            if key in seen:
                continue
            seen.add(key)
            yield from self._check_loop_shared(graph, site)
        yield from self._check_cross_site(graph, sites)

    # -------------------------------------------------------------- #
    # loop-shared keys
    # -------------------------------------------------------------- #
    def _check_loop_shared(
        self, graph: ProjectGraph, site: KeySite
    ) -> Iterator[Diagnostic]:
        if site.in_loop:
            if site.registry_loop_local:
                return  # fresh registry per iteration: a fresh key space
            if not self._constant_under(site.pattern, site.loop_vars):
                return
            path = graph.shortest_path_to(site.function)
            loop_vars = ", ".join(sorted(set(site.loop_vars))) or "<loop>"
            yield _project_diagnostic(
                self,
                site.path,
                site.line,
                site.col,
                f"stream key {site.pattern.display()!r} is constant across the "
                f"loop over {loop_vars!r}: every iteration consumes the same "
                f"named stream (call path {graph.render_path(path)}); derive a "
                "per-iteration key instead",
            )
        elif site.registry_is_param and site.pattern.is_literal:
            # Interprocedural variant: the registry arrives as a parameter
            # and some caller invokes this function from inside a loop — the
            # constant key is then shared across that caller's iterations.
            function = graph.functions.get(site.function)
            if function is None:
                return
            for caller_name, caller_site in graph.callers_of(site.function):
                if not caller_site.in_loop:
                    continue
                caller = graph.functions[caller_name]
                entry = graph.shortest_path_to(caller_name)
                yield _project_diagnostic(
                    self,
                    site.path,
                    site.line,
                    site.col,
                    f"stream key {site.pattern.display()!r} is constant but "
                    f"{function.display()}() is called inside a loop at "
                    f"{caller.path}:{caller_site.line} (call path "
                    f"{graph.render_path(entry + (site.function,))}): each "
                    "iteration consumes the same named stream; key the stream "
                    "by the loop entity",
                )
                return  # one finding per site is enough

    @staticmethod
    def _constant_under(pattern, loop_vars: Tuple[str, ...]) -> bool:
        """Does no hole of ``pattern`` depend on a loop-varying name?"""
        if pattern.is_literal:
            return True
        varying = set(loop_vars)
        for expr in pattern.hole_exprs():
            try:
                names = {
                    n.id
                    for n in ast.walk(ast.parse(expr, mode="eval"))
                    if isinstance(n, ast.Name)
                }
            except SyntaxError:
                return False  # opaque hole: assume it varies
            if names & varying:
                return False
        return True

    # -------------------------------------------------------------- #
    # cross-site pattern unification
    # -------------------------------------------------------------- #
    def _check_cross_site(
        self, graph: ProjectGraph, sites: List[KeySite]
    ) -> Iterator[Diagnostic]:
        groups: Dict[Tuple, List[KeySite]] = {}
        seen_sites: Set[Tuple] = set()
        for site in sites:
            dedupe = (site.path, site.line, site.col, site.pattern.display(), site.family)
            if dedupe in seen_sites:
                continue
            seen_sites.add(dedupe)
            scope = site.function if site.registry_local_ctor else "*"
            groups.setdefault((site.key_space, scope, site.registry), []).append(site)
        reported: Set[Tuple] = set()
        for group_key in sorted(groups, key=str):
            members = groups[group_key]
            for i, first in enumerate(members):
                for second in members[i + 1:]:
                    if (first.path, first.line) == (second.path, second.line):
                        continue
                    if not patterns_can_unify(first.pattern, second.pattern):
                        continue
                    pair = tuple(
                        sorted(
                            [
                                (first.path, first.line, first.pattern.display()),
                                (second.path, second.line, second.pattern.display()),
                            ]
                        )
                    )
                    if pair in reported:
                        continue
                    reported.add(pair)
                    # anchor the finding at the later site; describe both
                    a, b = sorted((first, second), key=lambda s: (s.path, s.line, s.col))
                    path_a = graph.render_path(graph.shortest_path_to(a.function))
                    path_b = graph.render_path(graph.shortest_path_to(b.function))
                    yield _project_diagnostic(
                        self,
                        b.path,
                        b.line,
                        b.col,
                        f"stream key pattern {b.pattern.display()!r} (call path "
                        f"{path_b}) can unify with {a.pattern.display()!r} at "
                        f"{a.path}:{a.line} (call path {path_a}): two call "
                        "paths can consume the same named stream; make the key "
                        "patterns disjoint or mark the sharing intentional "
                        "with '# repro: ignore[MV101]'",
                    )


# ---------------------------------------------------------------------- #
# MV102
# ---------------------------------------------------------------------- #
#: Sink descriptions for entropy modules watched beyond MV001/MV002.
_ENTROPY_MODULE_ATTRS = {
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
}
_ENTROPY_MODULES = {"secrets"}  # every attribute is entropy


@register_rule
class TransitiveWallClockRule(ProjectRule):
    """MV102: replayable code transitively reaching wall clocks / entropy."""

    rule_id = "MV102"
    description = (
        "repro/{core,sim,chain,baselines,faultinject} functions must not "
        "transitively reach time.time/datetime.now/os.urandom/secrets/"
        "uuid4 or a global RNG through the call graph; thread the virtual "
        "clock and named streams instead"
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Diagnostic]:
        direct: Dict[str, str] = {}  # qualname -> sink description
        for function in graph.iter_functions():
            module = graph.modules[function.module]
            if module.normalized.endswith(RNG_MODULE):
                continue  # seeded constructors, not entropy
            sink = self._direct_sink(module, function)
            if sink is not None:
                direct[function.qualname] = sink

        # BFS from sinks through the caller index; first (shortest) chain
        # wins, ties broken by sorted caller order for determinism.
        chains: Dict[str, Tuple[str, ...]] = {
            qualname: (qualname,) for qualname in sorted(direct)
        }
        frontier = sorted(direct)
        while frontier:
            next_frontier: List[str] = []
            for qualname in frontier:
                for caller, _site in sorted(
                    graph.callers_of(qualname), key=lambda c: c[0]
                ):
                    if caller in chains:
                        continue
                    chains[caller] = (caller,) + chains[qualname]
                    next_frontier.append(caller)
            frontier = sorted(set(next_frontier))

        for function in graph.iter_functions():
            qualname = function.qualname
            chain = chains.get(qualname)
            if chain is None or len(chain) < 2:
                continue  # clean, or a direct sink (MV001/MV002 territory)
            if qualname in direct:
                continue
            module = graph.modules[function.module]
            if not _in_package(module.normalized, REPLAY_PACKAGES):
                continue
            sink_function = chain[-1]
            sink = direct[sink_function]
            # anchor at the call that starts the chain
            line, col = function.line, 0
            for site in function.calls:
                if site.target == chain[1]:
                    line, col = site.line, site.col
                    break
            yield _project_diagnostic(
                self,
                function.path,
                line,
                col,
                f"{function.display()}() transitively reaches {sink}() via "
                f"{graph.render_path(chain)}; replayable code must take the "
                "virtual clock / a named stream as a parameter",
            )

    @staticmethod
    def _direct_sink(module: ModuleInfo, function: FunctionInfo) -> Optional[str]:
        imports = _ImportMap(module.tree)
        entropy = _entropy_imports(module.tree)
        for site in function.calls:
            node = site.node
            described = WallClockRule._wall_clock_call(node, imports)
            if described is not None:
                return described
            described = _global_rng_call(node, imports)
            if described is not None and not described.endswith(".Generator"):
                return described
            described = _entropy_call(node, entropy)
            if described is not None:
                return described
        return None


def _entropy_imports(tree: ast.AST) -> Dict[str, str]:
    """Local aliases of the entropy modules/functions MV102 watches."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _ENTROPY_MODULE_ATTRS or root in _ENTROPY_MODULES:
                    aliases[alias.asname or root] = root
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = (node.module or "").split(".")[0]
            if module in _ENTROPY_MODULE_ATTRS:
                for alias in node.names:
                    if alias.name in _ENTROPY_MODULE_ATTRS[module]:
                        aliases[alias.asname or alias.name] = f"{module}.{alias.name}"
            elif module in _ENTROPY_MODULES:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = f"{module}.{alias.name}"
    return aliases


def _entropy_call(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        target = aliases.get(func.id)
        if target is not None and "." in target:
            return target
        return None
    chain = attribute_chain(func)
    if chain is None or len(chain) < 2:
        return None
    root = aliases.get(chain[0])
    if root is None:
        return None
    if root in _ENTROPY_MODULES:
        return f"{root}." + ".".join(chain[1:])
    if root in _ENTROPY_MODULE_ATTRS and chain[1] in _ENTROPY_MODULE_ATTRS[root]:
        return f"{root}." + ".".join(chain[1:])
    return None


# ---------------------------------------------------------------------- #
# MV103
# ---------------------------------------------------------------------- #
@register_rule
class PicklingReachabilityRule(ProjectRule):
    """MV103: everything crossing a process-pool boundary must pickle."""

    rule_id = "MV103"
    description = (
        "submit/map payloads in repro/{core,harness} must resolve to "
        "module-level picklable callables and arguments: bound methods, "
        "locally-built callables, generator expressions and open file "
        "handles die on a spawn-context worker"
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Diagnostic]:
        from repro.analysis.rules import PicklableSubmissionRule

        for module_name in sorted(graph.modules):
            module = graph.modules[module_name]
            if not _in_package(module.normalized, _EXECUTOR_PACKAGES):
                continue
            if not PicklableSubmissionRule._imports_executors(module.tree):
                continue
            for qualname in sorted(module.functions):
                function = module.functions[qualname]
                open_handles = _open_handle_names(function)
                for site in function.calls:
                    node = site.node
                    if not isinstance(node.func, ast.Attribute):
                        continue
                    if node.func.attr not in _EXECUTOR_METHODS or not node.args:
                        continue
                    yield from self._check_submission(
                        graph, module, function, node, open_handles
                    )

    def _check_submission(
        self,
        graph: ProjectGraph,
        module: ModuleInfo,
        function: FunctionInfo,
        call: ast.Call,
        open_handles: Set[str],
    ) -> Iterator[Diagnostic]:
        method = call.func.attr  # submit | map
        target = call.args[0]
        yield from self._check_callable(graph, module, function, call, target, method)
        for arg in call.args[1:]:
            if isinstance(arg, ast.GeneratorExp):
                yield _project_diagnostic(
                    self,
                    function.path,
                    arg.lineno,
                    arg.col_offset,
                    f"generator expression passed to .{method}() cannot be "
                    "pickled across the process boundary; materialize a list "
                    "or tuple first",
                )
            for inner in ast.walk(arg):
                if isinstance(inner, ast.Name) and inner.id in open_handles:
                    yield _project_diagnostic(
                        self,
                        function.path,
                        inner.lineno,
                        inner.col_offset,
                        f"open file handle {inner.id!r} passed to .{method}() "
                        "cannot be pickled; pass the path and reopen in the "
                        "worker",
                    )

    def _check_callable(
        self,
        graph: ProjectGraph,
        module: ModuleInfo,
        function: FunctionInfo,
        call: ast.Call,
        target: ast.expr,
        method: str,
    ) -> Iterator[Diagnostic]:
        if isinstance(target, ast.Lambda):
            return  # MV008 already owns the lambda finding
        if isinstance(target, ast.Call):
            callee = target.func
            callee_chain = attribute_chain(callee)
            is_partial = (isinstance(callee, ast.Name) and callee.id == "partial") or (
                callee_chain is not None and callee_chain[-1] == "partial"
            )
            if is_partial and target.args:
                yield from self._check_callable(
                    graph, module, function, call, target.args[0], method
                )
            return
        if isinstance(target, ast.Attribute):
            chain = attribute_chain(target)
            if chain is None:
                return
            root = chain[0]
            if root in module.imports:
                return  # module attribute (mod.fn) — picklable by reference
            if root in module.classes:
                return  # Class.method — a plain function, picklable
            yield _project_diagnostic(
                self,
                function.path,
                target.lineno,
                target.col_offset,
                f"bound method {'.'.join(chain)!r} passed to .{method}() "
                "pickles its whole instance (and breaks under spawn when the "
                "instance holds handles); pass a module-level function plus "
                "plain-data arguments",
            )
            return
        if isinstance(target, ast.Name):
            resolved = self._resolve_callable(graph, module, function, target.id)
            if resolved == "local":
                yield _project_diagnostic(
                    self,
                    function.path,
                    target.lineno,
                    target.col_offset,
                    f"callable {target.id!r} passed to .{method}() is built "
                    "inside this function and cannot be pickled by a "
                    "spawn-context worker; hoist it to module level",
                )

    @staticmethod
    def _resolve_callable(
        graph: ProjectGraph, module: ModuleInfo, function: FunctionInfo, name: str
    ) -> str:
        """Classify a bare-name submission target.

        Returns ``"module-level"`` (fine), ``"local"`` (finding) or
        ``"unknown"`` (imported/third-party — give the benefit of the doubt).
        """
        if name in module.toplevel_names:
            return "module-level"
        if name in module.imports:
            return "unknown"
        # a local variable assigned from a lambda / nested def?
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name for t in node.targets
            ):
                if isinstance(node.value, ast.Lambda):
                    return "local"
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name
                and node is not function.node
            ):
                return "local"
        return "unknown"


def _open_handle_names(function: FunctionInfo) -> Set[str]:
    """Local names bound to ``open(...)`` results in this function."""
    handles: Set[str] = set()
    for node in ast.walk(function.node):
        if isinstance(node, ast.Assign):
            if _is_open_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        handles.add(target.id)
        elif isinstance(node, ast.withitem):
            if _is_open_call(node.context_expr) and isinstance(
                node.optional_vars, ast.Name
            ):
                handles.add(node.optional_vars.id)
    return handles


def _is_open_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "open"
    )


# ---------------------------------------------------------------------- #
# MV104
# ---------------------------------------------------------------------- #
#: Telemetry hub methods that emit records (see repro.obs.telemetry).
_EMISSION_METHODS = {"event", "count", "gauge", "observe", "span", "record_span"}


@register_rule
class TelemetryGuardRule(ProjectRule):
    """MV104: loop-body telemetry emission needs a dominating enabled-guard."""

    rule_id = "MV104"
    description = (
        "telemetry emission inside a loop body in replayable packages must "
        "sit behind a dominating telemetry.enabled guard (directly or via a "
        "hoisted alias) so the NullTelemetry fast path stays free"
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Diagnostic]:
        guard_attrs = _guard_attributes(graph)
        for module_name in sorted(graph.modules):
            module = graph.modules[module_name]
            if not _in_package(module.normalized, REPLAY_PACKAGES):
                continue
            class_aliases = _class_guard_aliases(module, guard_attrs)
            for qualname in sorted(module.functions):
                function = module.functions[qualname]
                if function.name == MODULE_BODY:
                    continue
                aliases = set(class_aliases.get(function.class_name or "", ()))
                aliases |= _function_guard_aliases(function, guard_attrs)
                self._guard_attrs = guard_attrs
                yield from self._scan_block(
                    function, function.node.body, aliases, guarded=False, in_loop=False
                )

    def _scan_block(
        self,
        function: FunctionInfo,
        statements: Sequence[ast.stmt],
        aliases: Set[str],
        guarded: bool,
        in_loop: bool,
    ) -> Iterator[Diagnostic]:
        block_guarded = guarded
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are scanned as their own functions
            if isinstance(statement, ast.If):
                test_guards = _test_mentions_guard(
                    statement.test, aliases, self._guard_attrs
                )
                yield from self._scan_block(
                    function, statement.body, aliases, block_guarded or test_guards, in_loop
                )
                yield from self._scan_block(
                    function, statement.orelse, aliases, block_guarded, in_loop
                )
                if _is_negated_guard(
                    statement.test, aliases, self._guard_attrs
                ) and _always_exits(statement.body):
                    block_guarded = True  # if not enabled: return/continue
                continue
            if isinstance(statement, (ast.For, ast.AsyncFor, ast.While)):
                yield from self._scan_block(
                    function, statement.body, aliases, block_guarded, in_loop=True
                )
                yield from self._scan_block(
                    function, statement.orelse, aliases, block_guarded, in_loop
                )
                continue
            if isinstance(statement, ast.Try):
                for part in (statement.body, statement.orelse, statement.finalbody):
                    yield from self._scan_block(
                        function, part, aliases, block_guarded, in_loop
                    )
                for handler in statement.handlers:
                    yield from self._scan_block(
                        function, handler.body, aliases, block_guarded, in_loop
                    )
                continue
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                if in_loop and not block_guarded:
                    for item in statement.items:
                        yield from self._flag_emissions(function, item.context_expr)
                yield from self._scan_block(
                    function, statement.body, aliases, block_guarded, in_loop
                )
                continue
            if in_loop and not block_guarded:
                yield from self._flag_emissions(function, statement)

    def _flag_emissions(
        self, function: FunctionInfo, node: ast.AST
    ) -> Iterator[Diagnostic]:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            chain = attribute_chain(sub.func)
            if (
                chain is not None
                and len(chain) >= 2
                and chain[-1] in _EMISSION_METHODS
                and chain[-2] == "telemetry"
            ):
                yield _project_diagnostic(
                    self,
                    function.path,
                    sub.lineno,
                    sub.col_offset,
                    f"telemetry emission {'.'.join(chain)}() inside a loop "
                    "body has no dominating telemetry.enabled guard; hoist "
                    "'if telemetry.enabled:' so the NullTelemetry path stays "
                    "free",
                )


def _guard_attributes(graph: ProjectGraph) -> Set[str]:
    """Attribute names that carry a hoisted ``telemetry.enabled`` value.

    Seeded with ``enabled`` itself, then closed transitively over attribute
    assignments anywhere in the project: ``self.traced = telemetry.enabled``
    makes ``traced`` a guard attribute, so ``traced = run.traced`` in another
    module is recognized as a guard alias too.  Broadening guard recognition
    only ever *suppresses* findings, so the over-approximation is safe.
    """
    guard_attrs: Set[str] = {"enabled"}
    assignments: List[Tuple[ast.expr, List[str]]] = []
    for module_name in sorted(graph.modules):
        for node in ast.walk(graph.modules[module_name].tree):
            if not isinstance(node, ast.Assign):
                continue
            attrs = [t.attr for t in node.targets if isinstance(t, ast.Attribute)]
            if attrs:
                assignments.append((node.value, attrs))
    for _ in range(len(assignments) + 1):  # fixpoint, bounded
        added = False
        for value, attrs in assignments:
            if _mentions_guard(value, set(), guard_attrs):
                for attr in attrs:
                    if attr not in guard_attrs:
                        guard_attrs.add(attr)
                        added = True
        if not added:
            break
    return guard_attrs


def _class_guard_aliases(module: ModuleInfo, guard_attrs: Set[str]) -> Dict[str, Set[str]]:
    """``self.X`` attributes assigned from a guard expression, per class."""
    aliases: Dict[str, Set[str]] = {}
    for qualname in sorted(module.functions):
        function = module.functions[qualname]
        if function.class_name is None:
            continue
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Assign):
                continue
            if not _mentions_guard(node.value, set(), guard_attrs):
                continue
            for target in node.targets:
                chain = attribute_chain(target)
                if chain and chain[0] == "self" and len(chain) == 2:
                    aliases.setdefault(function.class_name, set()).add(
                        f"self.{chain[1]}"
                    )
    return aliases


def _function_guard_aliases(function: FunctionInfo, guard_attrs: Set[str]) -> Set[str]:
    """Local names assigned from a guard expression (``traced = run.traced``)."""
    aliases: Set[str] = set()
    for _ in range(4):  # small local fixpoint: t = traced; u = t
        added = False
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign) and _mentions_guard(
                node.value, aliases, guard_attrs
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in aliases:
                        aliases.add(target.id)
                        added = True
        if not added:
            break
    return aliases


def _mentions_guard(node: ast.AST, aliases: Set[str], guard_attrs: Set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in guard_attrs:
            return True
        if isinstance(sub, ast.Name) and sub.id in aliases:
            return True
    return False


def _test_mentions_guard(
    test: ast.expr, aliases: Set[str], guard_attrs: Set[str]
) -> bool:
    if _mentions_guard(test, aliases, guard_attrs):
        return True
    for sub in ast.walk(test):
        chain = attribute_chain(sub) if isinstance(sub, ast.Attribute) else None
        if chain is not None and ".".join(chain) in aliases:
            return True
    return False


def _is_negated_guard(test: ast.expr, aliases: Set[str], guard_attrs: Set[str]) -> bool:
    return (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and _test_mentions_guard(test.operand, aliases, guard_attrs)
    )


def _always_exits(body: Sequence[ast.stmt]) -> bool:
    if not body:
        return False
    last = body[-1]
    return isinstance(last, (ast.Return, ast.Continue, ast.Break, ast.Raise))
