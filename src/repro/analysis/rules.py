"""The MV00x rule set: repo-specific determinism and contract checks.

Each rule encodes one discipline the MVCom reproduction depends on:

* **MV001** all randomness flows through ``repro.sim.rng`` (named streams),
  never through ``np.random.default_rng`` / ``random.*`` / ``np.random.seed``
  directly — stream isolation is what keeps Figs. 8-14 ablations comparable.
* **MV002** no wall-clock reads inside
  ``repro/{core,sim,chain,baselines,faultinject}``; simulated time must
  come from the virtual clock or replay breaks.
* **MV003** a parameter named ``rng`` must be annotated
  ``np.random.Generator`` and its function must not also reach for a global
  RNG — mixing stream and global draws silently couples subsystems.
* **MV004** no mutable default arguments.
* **MV005** no bare ``except:`` and no ``except Exception: pass`` silently
  swallowing errors.
* **MV006** public functions in ``repro.core`` whose signatures touch
  ``Solution``/``EpochInstance`` must carry docstrings referencing the
  paper's units or constraints (``N_min``, ``Ĉ``, eq. numbers, ...), so the
  code-to-paper mapping stays auditable.
* **MV007** replayable packages never construct their own telemetry hub or
  sinks (``Telemetry``/``JsonlSink``/``RingBufferSink``): the hub — and with
  it any clock — must arrive as a parameter, defaulting to the inert
  ``NULL_TELEMETRY``.  Only the harness owns wall clocks and trace files.
* **MV008** executor submissions in ``repro.core``/``repro.harness`` must be
  module-level (picklable) callables: the parallel SE engine uses a
  spawn-context ``ProcessPoolExecutor``, and a lambda or closure passed to
  ``submit``/``map`` pickles fine on fork but dies on spawn — exactly the
  cross-platform breakage CI cannot see on Linux alone.
* **MV009** no builtin ``hash()`` inside ``repro/{chain,sim}``: ``str``/
  ``bytes`` hashing is salted by ``PYTHONHASHSEED``, so any simulated
  quantity derived from it (addresses, bucket picks, tie-breaks) silently
  changes between interpreter launches even under a fixed seed.  Derive
  identifiers from explicit counters or ``hashlib`` digests instead.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import FileContext, Rule, register_rule

#: Packages whose code must be replayable under a fixed seed.
REPLAY_PACKAGES = (
    "repro/core/",
    "repro/sim/",
    "repro/chain/",
    "repro/baselines/",
    "repro/faultinject/",
)

#: The one module allowed to construct raw generators.
RNG_MODULE = "repro/sim/rng.py"


def _scope_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s descendants without entering nested function scopes.

    ``ast.walk`` descends into nested ``def``s and lambdas, which makes
    scope-sensitive rules (MV003's global-RNG check, MV008's closure check,
    MV009's shadow tracking) blame the outer function for the inner one's
    code — and report the same node twice when both scopes are checked.
    Class bodies ARE entered (they execute in the enclosing scope), but the
    methods inside them are not.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------- #
# import tracking shared by MV001/MV002/MV003
# ---------------------------------------------------------------------- #
class _ImportMap:
    """Local names bound to the modules/objects the RNG/clock rules watch."""

    def __init__(self, tree: ast.AST) -> None:
        self.random_modules: Set[str] = set()  # import random [as r]
        self.numpy_modules: Set[str] = set()  # import numpy [as np]
        self.numpy_random_modules: Set[str] = set()  # from numpy import random / import numpy.random as nr
        self.time_modules: Set[str] = set()  # import time [as t]
        self.datetime_modules: Set[str] = set()  # import datetime [as dt]
        self.datetime_classes: Set[str] = set()  # from datetime import datetime [as dt]
        self.date_classes: Set[str] = set()  # from datetime import date
        self.time_functions: Dict[str, str] = {}  # from time import time -> local name
        self.random_imports: List[ast.ImportFrom] = []  # from random import ...
        self.numpy_random_imports: List[Tuple[ast.ImportFrom, str]] = []  # from numpy.random import ...

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_modules.add(local)
                    elif alias.name == "numpy":
                        self.numpy_modules.add(local)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self.numpy_random_modules.add(alias.asname)
                        else:
                            self.numpy_modules.add("numpy")
                    elif alias.name == "time":
                        self.time_modules.add(local)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    self.random_imports.append(node)
                elif node.module == "numpy.random":
                    for alias in node.names:
                        self.numpy_random_imports.append((node, alias.name))
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random_modules.add(alias.asname or "random")
                elif node.module == "time":
                    for alias in node.names:
                        self.time_functions[alias.asname or alias.name] = alias.name
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name == "datetime":
                            self.datetime_classes.add(alias.asname or "datetime")
                        elif alias.name == "date":
                            self.date_classes.add(alias.asname or "date")


def _attribute_chain(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None when the base is not a plain name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _global_rng_call(node: ast.Call, imports: _ImportMap) -> Optional[str]:
    """Describe a raw global-RNG call, or None if the call is clean."""
    chain = _attribute_chain(node.func)
    if chain is None:
        if isinstance(node.func, ast.Name):
            for from_node, name in imports.numpy_random_imports:
                local = next(
                    (a.asname or a.name for a in from_node.names if a.name == name), name
                )
                if node.func.id == local:
                    return f"numpy.random.{name}"
        return None
    root, rest = chain[0], chain[1:]
    if root in imports.random_modules and rest:
        return "random." + ".".join(rest)
    if root in imports.numpy_modules and len(rest) >= 2 and rest[0] == "random":
        return "numpy." + ".".join(rest)
    if root in imports.numpy_random_modules and rest:
        return "numpy.random." + ".".join(rest)
    return None


# ---------------------------------------------------------------------- #
# MV001
# ---------------------------------------------------------------------- #
@register_rule
class RawRngRule(Rule):
    """MV001: raw RNG construction/draws outside ``repro/sim/rng.py``."""

    rule_id = "MV001"
    description = (
        "randomness must flow through repro.sim.rng (spawn_rng/RandomStreams); "
        "no direct np.random.default_rng / np.random.seed / random.* calls"
    )

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Diagnostic]:
        if context.in_package(RNG_MODULE):
            return
        imports = _ImportMap(tree)
        for from_node in imports.random_imports:
            names = ", ".join(alias.name for alias in from_node.names)
            yield self.diagnostic(
                context,
                from_node,
                f"'from random import {names}' bypasses the named-stream "
                "discipline; use repro.sim.rng.spawn_rng/spawn_fast_rng",
            )
        for from_node, name in imports.numpy_random_imports:
            if name == "Generator":
                continue  # the annotation type, not a draw
            yield self.diagnostic(
                context,
                from_node,
                f"'from numpy.random import {name}' bypasses the named-stream "
                "discipline; use repro.sim.rng.spawn_rng",
            )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            described = _global_rng_call(node, imports)
            if described is None:
                continue
            if described.startswith("numpy.random.") and described.endswith(".Generator"):
                continue  # constructing/annotating the type alias is fine
            yield self.diagnostic(
                context,
                node,
                f"direct call to {described}(); derive a named stream via "
                "repro.sim.rng.spawn_rng/RandomStreams instead",
            )


# ---------------------------------------------------------------------- #
# MV002
# ---------------------------------------------------------------------- #
_WALL_CLOCK_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}
_WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}


@register_rule
class WallClockRule(Rule):
    """MV002: wall-clock reads inside replayable packages."""

    rule_id = "MV002"
    description = (
        "no wall-clock calls (time.time/monotonic, datetime.now, ...) inside "
        "repro/{core,sim,chain,baselines}; use the simulation's virtual clock"
    )

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Diagnostic]:
        if not context.in_package(*REPLAY_PACKAGES):
            return
        imports = _ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            described = self._wall_clock_call(node, imports)
            if described is not None:
                yield self.diagnostic(
                    context,
                    node,
                    f"wall-clock call {described}() breaks replayability; "
                    "thread the simulation clock (or an injectable clock) instead",
                )

    @staticmethod
    def _wall_clock_call(node: ast.Call, imports: _ImportMap) -> Optional[str]:
        if isinstance(node.func, ast.Name):
            original = imports.time_functions.get(node.func.id)
            if original in _WALL_CLOCK_TIME_ATTRS:
                return f"time.{original}"
            return None
        chain = _attribute_chain(node.func)
        if chain is None:
            return None
        root, rest = chain[0], chain[1:]
        if root in imports.time_modules and len(rest) == 1 and rest[0] in _WALL_CLOCK_TIME_ATTRS:
            return f"time.{rest[0]}"
        if (
            root in imports.datetime_modules
            and len(rest) == 2
            and rest[0] in ("datetime", "date")
            and rest[1] in _WALL_CLOCK_DATETIME_ATTRS
        ):
            return f"datetime.{rest[0]}.{rest[1]}"
        if root in imports.datetime_classes and len(rest) == 1 and rest[0] in _WALL_CLOCK_DATETIME_ATTRS:
            return f"datetime.datetime.{rest[0]}"
        if root in imports.date_classes and len(rest) == 1 and rest[0] == "today":
            return "datetime.date.today"
        return None


# ---------------------------------------------------------------------- #
# MV003
# ---------------------------------------------------------------------- #
@register_rule
class RngParameterRule(Rule):
    """MV003: ``rng`` parameters must be typed Generators fed by named streams."""

    rule_id = "MV003"
    description = (
        "a parameter named 'rng' must be annotated np.random.Generator and its "
        "function must not also call a global RNG"
    )

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Diagnostic]:
        imports = _ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for packed in (node.args.vararg, node.args.kwarg):
                # ``*rng`` / ``**rng`` pack tuples/dicts, never a Generator;
                # flag the naming instead of demanding an impossible annotation.
                if packed is not None and packed.arg == "rng":
                    star = "**" if packed is node.args.kwarg else "*"
                    yield self.diagnostic(
                        context,
                        packed,
                        f"parameter '{star}rng' of {node.name}() packs "
                        "arguments and can never be a Generator stream; "
                        "rename it or take 'rng: np.random.Generator'",
                    )
            rng_args = [
                arg
                for arg in (
                    node.args.posonlyargs + node.args.args + node.args.kwonlyargs
                )
                if arg.arg == "rng"
            ]
            if not rng_args:
                continue
            for arg in rng_args:
                annotation = self._annotation_text(arg)
                if annotation is None:
                    yield self.diagnostic(
                        context,
                        arg,
                        f"parameter 'rng' of {node.name}() lacks an annotation; "
                        "annotate it np.random.Generator",
                    )
                elif "Generator" not in annotation:
                    yield self.diagnostic(
                        context,
                        arg,
                        f"parameter 'rng' of {node.name}() is annotated "
                        f"{annotation!r}, not np.random.Generator",
                    )
            # Scope-confined walk: a nested def's global-RNG call is that
            # function's own finding, not this one's (and must not be
            # reported twice when both carry an ``rng`` parameter).
            for inner in _scope_walk(node):
                if isinstance(inner, ast.Call):
                    described = _global_rng_call(inner, imports)
                    if described is not None and not described.endswith(".Generator"):
                        yield self.diagnostic(
                            context,
                            inner,
                            f"{node.name}() takes an explicit rng but also calls "
                            f"{described}(); draw from the passed stream only",
                        )

    @staticmethod
    def _annotation_text(arg: ast.arg) -> Optional[str]:
        if arg.annotation is None:
            return None
        text = ast.unparse(arg.annotation)
        return text.strip("\"'")


# ---------------------------------------------------------------------- #
# MV004
# ---------------------------------------------------------------------- #
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"}


@register_rule
class MutableDefaultRule(Rule):
    """MV004: mutable default arguments are shared across calls."""

    rule_id = "MV004"
    description = "no mutable default arguments ([], {}, set(), ...)"

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            positional = node.args.posonlyargs + node.args.args
            for arg, default in zip(positional[len(positional) - len(node.args.defaults):], node.args.defaults):
                if self._mutable(default):
                    yield self._finding(context, node, arg, default)
            for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
                if default is not None and self._mutable(default):
                    yield self._finding(context, node, arg, default)

    def _finding(self, context: FileContext, func: ast.AST, arg: ast.arg, default: ast.expr) -> Diagnostic:
        return self.diagnostic(
            context,
            default,
            f"mutable default {ast.unparse(default)!r} for parameter "
            f"'{arg.arg}' of {func.name}() is shared across calls; default to "
            "None and construct inside",
        )

    @staticmethod
    def _mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CALLS
        return False


# ---------------------------------------------------------------------- #
# MV005
# ---------------------------------------------------------------------- #
@register_rule
class SilentExceptRule(Rule):
    """MV005: bare/broad exception handlers that swallow errors."""

    rule_id = "MV005"
    description = "no bare 'except:' and no 'except Exception: pass' swallowing"

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    context,
                    node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt too; "
                    "name the exception type",
                )
            elif self._broad(node.type) and self._swallows(node.body):
                yield self.diagnostic(
                    context,
                    node,
                    "'except Exception' with a pass-only body swallows errors "
                    "silently; handle, log or re-raise",
                )

    @staticmethod
    def _broad(annotation: ast.expr) -> bool:
        names = []
        if isinstance(annotation, ast.Tuple):
            names = [e.id for e in annotation.elts if isinstance(e, ast.Name)]
        elif isinstance(annotation, ast.Name):
            names = [annotation.id]
        return any(name in ("Exception", "BaseException") for name in names)

    @staticmethod
    def _swallows(body: List[ast.stmt]) -> bool:
        for statement in body:
            if isinstance(statement, ast.Pass):
                continue
            if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
                continue  # docstring or bare Ellipsis
            return False
        return True


# ---------------------------------------------------------------------- #
# MV006
# ---------------------------------------------------------------------- #
_PAPER_TOKENS = re.compile(
    r"(\bN_?min\b|Ĉ|\bC_?hat\b|\bcapacit\w*|\bconstraint\w*|\bconst\.|\bcons\.|"
    r"\butilit\w*|\beq\.|\bTXs?\b|\bfeasib\w*|\bDDL\b|\bcardinalit\w*|:math:)",
    re.IGNORECASE,
)

_CORE_TYPES = ("Solution", "EpochInstance")


@register_rule
class PaperContractDocRule(Rule):
    """MV006: core API touching Solution/EpochInstance must cite the paper contract."""

    rule_id = "MV006"
    description = (
        "public repro.core functions touching Solution/EpochInstance need "
        "docstrings referencing their units or constraint (N_min, Ĉ, eq. ...)"
    )

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Diagnostic]:
        if not context.in_package("repro/core/"):
            return
        for node in self._public_functions(tree):
            if not self._touches_core_types(node):
                continue
            docstring = ast.get_docstring(node)
            if docstring is None:
                yield self.diagnostic(
                    context,
                    node,
                    f"public core function {node.name}() touches "
                    "Solution/EpochInstance but has no docstring",
                )
            elif not _PAPER_TOKENS.search(docstring):
                yield self.diagnostic(
                    context,
                    node,
                    f"docstring of {node.name}() does not reference the paper "
                    "contract (N_min, Ĉ, capacity, utility, eq. ...); the "
                    "paper mapping must stay auditable",
                )

    @staticmethod
    def _public_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
        def walk(body: Iterable[ast.stmt], class_public: bool = True) -> Iterator[ast.FunctionDef]:
            for statement in body:
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if class_public and not statement.name.startswith("_"):
                        yield statement
                elif isinstance(statement, ast.ClassDef):
                    yield from walk(statement.body, class_public=not statement.name.startswith("_"))

        if isinstance(tree, ast.Module):
            yield from walk(tree.body)

    @staticmethod
    def _touches_core_types(node: ast.FunctionDef) -> bool:
        annotations = [
            arg.annotation
            for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs
            if arg.annotation is not None
        ]
        if node.returns is not None:
            annotations.append(node.returns)
        for annotation in annotations:
            text = ast.unparse(annotation)
            if any(core_type in text for core_type in _CORE_TYPES):
                return True
        return False


# ---------------------------------------------------------------------- #
# MV007
# ---------------------------------------------------------------------- #
#: Live observability objects a replayable package must receive, not build.
#: ``NullTelemetry`` is deliberately absent: constructing the inert default
#: is always safe.
_LIVE_OBS_NAMES = ("Telemetry", "JsonlSink", "RingBufferSink")


@register_rule
class InjectedTelemetryRule(Rule):
    """MV007: replayable packages receive their telemetry hub, never build one."""

    rule_id = "MV007"
    description = (
        "no Telemetry/JsonlSink/RingBufferSink construction inside "
        "repro/{core,sim,chain,baselines}; accept a telemetry parameter "
        "(default NULL_TELEMETRY) so clocks and sinks stay injected"
    )

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Diagnostic]:
        if not context.in_package(*REPLAY_PACKAGES):
            return
        local_names: Dict[str, str] = {}  # local name -> qualified obs name
        obs_modules: Set[str] = set()  # local aliases of repro.obs[.x] modules
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module and node.module.startswith("repro.obs"):
                    for alias in node.names:
                        if alias.name in _LIVE_OBS_NAMES:
                            local_names[alias.asname or alias.name] = (
                                f"{node.module}.{alias.name}"
                            )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.obs" or alias.name.startswith("repro.obs."):
                        obs_modules.add(alias.asname or alias.name.split(".")[0])
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            described = self._live_construction(node, local_names, obs_modules)
            if described is not None:
                yield self.diagnostic(
                    context,
                    node,
                    f"replayable code constructs {described}(); take a "
                    "'telemetry' parameter (default NULL_TELEMETRY) instead — "
                    "only the harness may own hubs, clocks and sinks",
                )

    @staticmethod
    def _live_construction(
        node: ast.Call, local_names: Dict[str, str], obs_modules: Set[str]
    ) -> Optional[str]:
        if isinstance(node.func, ast.Name):
            return local_names.get(node.func.id)
        chain = _attribute_chain(node.func)
        if chain is None:
            return None
        if chain[0] in obs_modules and chain[-1] in _LIVE_OBS_NAMES:
            return ".".join(chain)
        return None


# ---------------------------------------------------------------------- #
# MV008
# ---------------------------------------------------------------------- #
#: Executor methods whose first argument crosses the pickle boundary.
_EXECUTOR_METHODS = ("submit", "map")

#: Packages that drive process pools (the parallel SE engine and harness).
_EXECUTOR_PACKAGES = ("repro/core/", "repro/harness/")


@register_rule
class PicklableSubmissionRule(Rule):
    """MV008: executor submissions must be module-level picklable callables."""

    rule_id = "MV008"
    description = (
        "callables passed to ProcessPoolExecutor submit/map in "
        "repro/{core,harness} must be module-level functions — lambdas and "
        "closures break under the spawn start method"
    )

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Diagnostic]:
        if not context.in_package(*_EXECUTOR_PACKAGES):
            return
        if not self._imports_executors(tree):
            return
        # Module scope: top-level defs are picklable by reference, so the
        # visible-closure set starts empty and grows per enclosing function.
        yield from self._check_scope(tree, context, frozenset())

    def _check_scope(
        self, scope: ast.AST, context: FileContext, closures: frozenset
    ) -> Iterator[Diagnostic]:
        """Check one function scope; ``closures`` = function-local def names
        visible here (Python scoping: these shadow same-named module-level
        functions, which is exactly why a plain name-set over the whole tree
        misfires)."""
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defined_here = frozenset(
                inner.name
                for inner in _scope_walk(scope)
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
            closures = closures | defined_here
        for node in _scope_walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(node, context, closures)
                continue
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _EXECUTOR_METHODS or not node.args:
                continue
            for arg in node.args:
                for inner in ast.walk(arg):
                    if isinstance(inner, ast.Lambda):
                        yield self.diagnostic(
                            context,
                            inner,
                            f"lambda passed to .{node.func.attr}() cannot be "
                            "pickled by a spawn-context worker; define a "
                            "module-level function instead",
                        )
            target = self._submission_target(node.args[0])
            if isinstance(target, ast.Name) and target.id in closures:
                wrapped = "" if target is node.args[0] else " (via functools.partial)"
                yield self.diagnostic(
                    context,
                    target,
                    f"closure {target.id}(){wrapped} passed to "
                    f".{node.func.attr}() is defined inside another function "
                    "and cannot be pickled by a spawn-context worker; hoist "
                    "it to module level",
                )

    @staticmethod
    def _submission_target(expr: ast.expr) -> ast.expr:
        """Unwrap ``functools.partial(...)`` chains to the wrapped callable.

        ``partial`` objects pickle by pickling the wrapped function, so
        ``submit(partial(closure, x))`` fails exactly like ``submit(closure)``.
        """
        while isinstance(expr, ast.Call) and expr.args:
            func = expr.func
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            else:
                break
            if name != "partial":
                break
            expr = expr.args[0]
        return expr

    @staticmethod
    def _imports_executors(tree: ast.AST) -> bool:
        """True when the module reaches for process/thread pools at all."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in ("concurrent", "multiprocessing"):
                        return True
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                if module.split(".")[0] in ("concurrent", "multiprocessing"):
                    return True
        return False


# ---------------------------------------------------------------------- #
# MV009
# ---------------------------------------------------------------------- #
#: Packages whose simulated quantities must survive interpreter restarts.
_HASHSEED_PACKAGES = ("repro/chain/", "repro/sim/")


@register_rule
class BuiltinHashRule(Rule):
    """MV009: builtin ``hash()`` output depends on PYTHONHASHSEED."""

    rule_id = "MV009"
    description = (
        "no builtin hash() inside repro/{chain,sim}: str/bytes hashing is "
        "salted per interpreter launch, breaking cross-run determinism; use "
        "explicit counters or hashlib digests"
    )

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Diagnostic]:
        if not context.in_package(*_HASHSEED_PACKAGES):
            return
        # Scope-aware shadowing: a function-local ``hash = ...`` used to be
        # collected by a whole-tree walk and silenced the rule module-wide;
        # shadows now apply only inside the scope that binds them.
        yield from self._check_scope(tree, context, self._scope_bindings(tree))

    def _check_scope(
        self, scope: ast.AST, context: FileContext, shadowed: Set[str]
    ) -> Iterator[Diagnostic]:
        for node in _scope_walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = shadowed | self._scope_bindings(node)
                inner |= {
                    arg.arg
                    for arg in (
                        node.args.posonlyargs
                        + node.args.args
                        + node.args.kwonlyargs
                        + [a for a in (node.args.vararg, node.args.kwarg) if a]
                    )
                }
                yield from self._check_scope(node, context, inner)
                continue
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "hash" and "hash" not in shadowed:
                yield self.diagnostic(
                    context,
                    node,
                    "builtin hash() is salted by PYTHONHASHSEED and changes "
                    "between interpreter launches; derive the value from an "
                    "explicit counter or a hashlib digest",
                )

    @staticmethod
    def _scope_bindings(scope: ast.AST) -> Set[str]:
        """Names bound directly in ``scope`` (defs, imports, assignments)."""
        names: Set[str] = set()
        for node in _scope_walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names
