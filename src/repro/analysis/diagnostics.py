"""Diagnostic records emitted by the :mod:`repro.analysis` lint engine.

A diagnostic pins one finding to a ``path:line`` location together with the
rule id (``MV001`` ...), a human-readable message and a severity.  The
records are plain frozen dataclasses so rules stay trivially testable and
the CLI can sort/format them without knowing anything about the rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Sequence


class Severity(enum.Enum):
    """How bad a finding is; only ``ERROR`` affects the exit code."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding at ``path:line``."""

    path: str
    line: int
    rule_id: str
    message: str = field(compare=False)
    severity: Severity = field(default=Severity.ERROR, compare=False)
    column: int = field(default=0, compare=False)

    def format(self) -> str:
        """GCC-style one-line rendering: ``path:line:col: SEV MVxxx message``."""
        tag = self.severity.value.upper()
        return f"{self.path}:{self.line}:{self.column}: {tag} {self.rule_id} {self.message}"

    def with_path(self, path: str) -> "Diagnostic":
        """Copy of this diagnostic re-anchored to ``path``."""
        return replace(self, path=path)


def sort_diagnostics(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Stable ordering for reports: by path, then line, then rule id."""
    return sorted(diagnostics)


def render_report(diagnostics: Sequence[Diagnostic]) -> str:
    """Multi-line report plus a one-line summary (empty string when clean)."""
    if not diagnostics:
        return ""
    lines = [diagnostic.format() for diagnostic in sort_diagnostics(diagnostics)]
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    warnings = len(diagnostics) - errors
    lines.append(f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)
