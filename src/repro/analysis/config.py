"""Configuration for the lint engine: ``[tool.repro.analysis]`` in pyproject.

Supported keys::

    [tool.repro.analysis]
    disable = ["MV006"]            # rule ids switched off everywhere
    enable  = ["MV001"]            # explicit allow-list (optional; default: all)
    ignore  = ["src/repro/_gen/*"] # fnmatch path patterns skipped entirely
    baseline = "lint-baseline.json"  # accepted findings, relative to this file

    [tool.repro.analysis.per-rule-ignore]
    MV002 = ["repro/chain/measurement.py"]   # rule id -> path patterns

Python 3.11+ parses with :mod:`tomllib`; on 3.9/3.10 (no tomllib, and the
repo adds no third-party deps) a minimal line-oriented TOML-subset parser
covers exactly the shapes above: tables, string/bool/int keys and string
arrays, including multi-line arrays.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Optional, Sequence

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    _toml = None

CONFIG_SECTION = ("tool", "repro", "analysis")


@dataclass
class AnalysisConfig:
    """Effective lint configuration after reading pyproject.toml."""

    disabled_rules: frozenset = frozenset()
    enabled_rules: Optional[frozenset] = None  # None -> every registered rule
    ignore_paths: List[str] = field(default_factory=list)
    per_rule_ignores: Dict[str, List[str]] = field(default_factory=dict)
    source: Optional[str] = None  # pyproject path the config came from
    baseline: Optional[str] = None  # accepted-findings file (see baseline.py)

    def baseline_path(self) -> Optional[str]:
        """Baseline location resolved relative to the pyproject that set it."""
        if self.baseline is None:
            return None
        if os.path.isabs(self.baseline) or self.source is None:
            return self.baseline
        return os.path.join(os.path.dirname(os.path.abspath(self.source)), self.baseline)

    def rule_enabled(self, rule_id: str) -> bool:
        """Is ``rule_id`` globally switched on?"""
        if rule_id in self.disabled_rules:
            return False
        if self.enabled_rules is not None:
            return rule_id in self.enabled_rules
        return True

    def path_ignored(self, path: str, rule_id: Optional[str] = None) -> bool:
        """Is ``path`` excluded — entirely, or for one specific rule?"""
        normalized = _normalize(path)
        for pattern in self.ignore_paths:
            if _match(normalized, pattern):
                return True
        if rule_id is not None:
            for pattern in self.per_rule_ignores.get(rule_id, ()):
                if _match(normalized, pattern):
                    return True
        return False


def _normalize(path: str) -> str:
    return path.replace(os.sep, "/").lstrip("./")


def _match(path: str, pattern: str) -> bool:
    pattern = pattern.replace(os.sep, "/").lstrip("./")
    return fnmatch(path, pattern) or fnmatch(path, "*/" + pattern)


def find_pyproject(start: Optional[str] = None) -> Optional[str]:
    """Walk up from ``start`` (default: cwd) to the nearest pyproject.toml."""
    directory = os.path.abspath(start or os.getcwd())
    while True:
        candidate = os.path.join(directory, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent


def load_config(pyproject_path: Optional[str] = None, start: Optional[str] = None) -> AnalysisConfig:
    """Read ``[tool.repro.analysis]``; missing file/section yields defaults."""
    path = pyproject_path or find_pyproject(start)
    if path is None or not os.path.isfile(path):
        return AnalysisConfig()
    with open(path, "rb") as handle:
        raw = handle.read().decode("utf-8")
    table = _parse_toml(raw)
    section = table
    for key in CONFIG_SECTION:
        section = section.get(key, {})
        if not isinstance(section, dict):
            return AnalysisConfig(source=path)
    return config_from_section(section, source=path)


def config_from_section(section: dict, source: Optional[str] = None) -> AnalysisConfig:
    """Build an :class:`AnalysisConfig` from the decoded TOML section."""
    disable = frozenset(str(r).upper() for r in section.get("disable", ()))
    enable = section.get("enable")
    enabled = None if enable is None else frozenset(str(r).upper() for r in enable)
    ignore = [str(p) for p in section.get("ignore", ())]
    per_rule = {}
    for rule_id, patterns in (section.get("per-rule-ignore") or {}).items():
        if isinstance(patterns, str):
            patterns = [patterns]
        per_rule[str(rule_id).upper()] = [str(p) for p in patterns]
    baseline = section.get("baseline")
    return AnalysisConfig(
        disabled_rules=disable,
        enabled_rules=enabled,
        ignore_paths=ignore,
        per_rule_ignores=per_rule,
        source=source,
        baseline=None if baseline is None else str(baseline),
    )


def parse_toml(text: str) -> dict:
    """Decode TOML text: :mod:`tomllib` when available, the subset parser
    below otherwise.  Public so other config consumers (e.g. the SLO specs
    in :mod:`repro.obs.slo`) share one 3.9-safe parser instead of growing
    their own."""
    return _parse_toml(text)


def _parse_toml(text: str) -> dict:
    if _toml is not None:
        return _toml.loads(text)
    return _parse_toml_subset(text)


def _parse_toml_subset(text: str) -> dict:
    """TOML-subset fallback for Pythons without :mod:`tomllib`.

    Handles ``[dotted.table.headers]``, ``key = value`` with string / bool /
    int / float values and (possibly multi-line) arrays of strings — the
    full shape of ``[tool.repro.analysis]``.  Unrelated constructs it cannot
    decode are skipped rather than fatal, so an exotic pyproject elsewhere
    in the file never breaks linting.
    """
    root: dict = {}
    current = root
    pending_key: Optional[str] = None
    pending_value = ""

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if pending_key is not None:
            pending_value += " " + line
            if _brackets_balanced(pending_value):
                current[pending_key] = _parse_value(pending_value)
                pending_key, pending_value = None, ""
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            current = root
            header = line[1:-1].strip()
            for part in _split_header(header):
                current = current.setdefault(part, {})
                if not isinstance(current, dict):  # scalar/table clash; bail out
                    current = {}
            continue
        if "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = _unquote(key.strip())
        value = _strip_comment(value.strip())
        if value.startswith("[") and not _brackets_balanced(value):
            pending_key, pending_value = key, value
            continue
        current[key] = _parse_value(value)
    return root


def _split_header(header: str) -> List[str]:
    parts, buffer, quote = [], "", ""
    for char in header:
        if quote:
            if char == quote:
                quote = ""
            else:
                buffer += char
        elif char in "\"'":
            quote = char
        elif char == ".":
            parts.append(buffer.strip())
            buffer = ""
        else:
            buffer += char
    parts.append(buffer.strip())
    return [p for p in parts if p]


def _brackets_balanced(value: str) -> bool:
    depth, quote = 0, ""
    for char in value:
        if quote:
            if char == quote:
                quote = ""
        elif char in "\"'":
            quote = char
        elif char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
    return depth <= 0


def _strip_comment(value: str) -> str:
    quote = ""
    for position, char in enumerate(value):
        if quote:
            if char == quote:
                quote = ""
        elif char in "\"'":
            quote = char
        elif char == "#":
            return value[:position].strip()
    return value


def _parse_value(value: str):
    value = value.strip()
    if value.startswith("[") and value.endswith("]"):
        return [_parse_value(item) for item in _split_array(value[1:-1])]
    if value in ("true", "false"):
        return value == "true"
    if value and (value[0] in "\"'"):
        return _unquote(value)
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def _split_array(body: str) -> List[str]:
    items, buffer, quote, depth = [], "", "", 0
    for char in body:
        if quote:
            buffer += char
            if char == quote:
                quote = ""
        elif char in "\"'":
            quote = char
            buffer += char
        elif char == "[":
            depth += 1
            buffer += char
        elif char == "]":
            depth -= 1
            buffer += char
        elif char == "," and depth == 0:
            if buffer.strip():
                items.append(buffer.strip())
            buffer = ""
        else:
            buffer += char
    if buffer.strip():
        items.append(buffer.strip())
    return items


def _unquote(value: str) -> str:
    value = value.strip()
    if len(value) >= 2 and value[0] == value[-1] and value[0] in "\"'":
        return value[1:-1]
    return value
