"""Named-stream key extraction and pattern unification for rule MV101.

The SE convergence guarantees (Theorem 2) assume every replica/thread
consumes an *independent* named random stream.  All stream names in this
repo funnel through four primitives::

    streams.get(name)                  # repro.sim.rng.RandomStreams
    streams.fork(name)                 # child registry (separate key space)
    spawn_rng(seed, name)  /  spawn_fast_rng(seed, name)
    derive_seed(seed, name)

This module statically extracts every such *key site*, turns the key
expression into a :class:`KeyPattern` (literal text with wildcard holes for
interpolated values, e.g. ``f"replica-{replica_id}-leave"`` ->
``replica-<*>-leave``), propagates keys that arrive via function parameters
back to the caller's argument expression through the project call graph,
and decides whether two patterns *can unify* — i.e. whether two call paths
could consume the same stream.

Two documented approximations keep the analysis precise enough to gate CI:

* **Holes are dash-free.**  Stream names use ``-`` as the field separator
  (``replica-3-init``); an interpolated hole is assumed never to contain a
  ``-``.  Without this, ``replica-<*>-n<*>`` and ``replica-<*>-dyn-n<*>``
  would spuriously unify by smuggling ``-dyn`` into the first hole.
* **Registry hints.**  Keys only collide when drawn against the same root
  seed.  Each site carries a *registry hint* — the receiver expression for
  ``.get``/``.fork`` (``streams``, ``self.streams``) or the seed argument
  with a trailing ``.seed`` stripped for the spawn/derive forms — and only
  sites with the same hint are compared.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.graph import (
    MODULE_BODY,
    CallSite,
    FunctionInfo,
    ModuleInfo,
    ProjectGraph,
    attribute_chain,
)

#: The module whose internals are exempt (it *implements* the primitives).
RNG_MODULE_SUFFIX = "repro/sim/rng.py"

#: spawn-style primitives: ``f(seed, name)``.
SPAWN_CALLEES = ("spawn_rng", "spawn_fast_rng", "derive_seed")

#: Registry method names: ``streams.get(name)`` / ``streams.fork(name)``.
REGISTRY_METHODS = ("get", "fork")

#: Receiver name suffixes accepted as a stream registry for ``.get``/``.fork``
#: (the repo convention: registries are called ``streams``/``*_streams``).
REGISTRY_NAME_HINTS = ("streams", "stream")

#: Maximum caller-argument propagation depth for parametric keys.
MAX_PROPAGATION_DEPTH = 8


class Hole:
    """A wildcard segment of a key pattern (one interpolated expression)."""

    __slots__ = ("expr",)

    def __init__(self, expr: str) -> None:
        self.expr = expr

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Hole({self.expr!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Hole)  # holes unify regardless of expression

    def __hash__(self) -> int:
        return 0


Token = Union[str, Hole]


@dataclass(frozen=True)
class KeyPattern:
    """A stream key as literal text with wildcard holes."""

    tokens: Tuple[Token, ...]

    @property
    def is_literal(self) -> bool:
        return all(isinstance(t, str) for t in self.tokens)

    @property
    def is_opaque(self) -> bool:
        """True when there is no literal text at all (pure wildcard)."""
        return not any(isinstance(t, str) and t for t in self.tokens)

    def hole_exprs(self) -> Tuple[str, ...]:
        return tuple(t.expr for t in self.tokens if isinstance(t, Hole))

    def display(self) -> str:
        parts = []
        for token in self.tokens:
            if isinstance(token, Hole):
                parts.append("{" + token.expr + "}")
            else:
                parts.append(token)
        return "".join(parts)


def pattern_from_expr(node: ast.expr) -> KeyPattern:
    """Best-effort :class:`KeyPattern` for a key expression."""
    tokens: List[Token] = []

    def emit(sub: ast.expr) -> None:
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            tokens.append(sub.value)
        elif isinstance(sub, ast.JoinedStr):
            for value in sub.values:
                emit(value)
        elif isinstance(sub, ast.FormattedValue):
            tokens.append(Hole(_expr_text(sub.value)))
        elif isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Add):
            emit(sub.left)
            emit(sub.right)
        else:
            tokens.append(Hole(_expr_text(sub)))

    emit(node)
    return KeyPattern(tokens=_merge_literals(tokens))


def _merge_literals(tokens: Sequence[Token]) -> Tuple[Token, ...]:
    merged: List[Token] = []
    for token in tokens:
        if isinstance(token, str) and merged and isinstance(merged[-1], str):
            merged[-1] = merged[-1] + token
        else:
            merged.append(token)
    return tuple(merged)


def _expr_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover
        return "<expr>"


# ---------------------------------------------------------------------- #
# pattern unification
# ---------------------------------------------------------------------- #
#: Character a hole can never produce (the stream-name field separator).
HOLE_EXCLUDED = "-"


def _units(pattern: KeyPattern) -> Tuple[Optional[str], ...]:
    """Flatten to single characters; ``None`` marks a wildcard hole."""
    units: List[Optional[str]] = []
    for token in pattern.tokens:
        if isinstance(token, Hole):
            units.append(None)
        else:
            units.extend(token)
    return tuple(units)


def patterns_can_unify(first: KeyPattern, second: KeyPattern) -> bool:
    """Can the two patterns produce the same concrete stream name?

    Holes match any (possibly empty) string not containing ``-`` (see the
    module docstring).  Implemented as a reachability DP over the two
    pattern positions.
    """
    a, b = _units(first), _units(second)
    seen: Set[Tuple[int, int]] = set()
    stack: List[Tuple[int, int]] = [(0, 0)]
    while stack:
        i, j = stack.pop()
        if (i, j) in seen:
            continue
        seen.add((i, j))
        if i == len(a) and j == len(b):
            return True
        moves: List[Tuple[int, int]] = []
        ca = a[i] if i < len(a) else False  # False = exhausted
        cb = b[j] if j < len(b) else False
        if ca is None:  # hole on the left
            moves.append((i + 1, j))  # hole emits nothing more
            if cb is None:
                moves.append((i, j + 1))
            elif cb is not False and cb != HOLE_EXCLUDED:
                moves.append((i, j + 1))  # left hole emits cb
        if cb is None:  # hole on the right
            moves.append((i, j + 1))
            if ca is not None and ca is not False and ca != HOLE_EXCLUDED:
                moves.append((i + 1, j))  # right hole emits ca
        if ca is not None and cb is not None and ca is not False and cb is not False:
            if ca == cb:
                moves.append((i + 1, j + 1))
        for move in moves:
            if move not in seen:
                stack.append(move)
    return False


# ---------------------------------------------------------------------- #
# key-site collection
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class KeySite:
    """One statically-extracted named-stream key site."""

    path: str
    line: int
    col: int
    function: str  # qualified name of the enclosing function
    family: str  # "get" | "fork" | "spawn_rng" | "spawn_fast_rng" | "derive_seed"
    registry: str  # normalized registry hint (see module docstring)
    pattern: KeyPattern
    in_loop: bool
    loop_vars: Tuple[str, ...] = ()
    registry_is_param: bool = False  # registry/seed arrives as a parameter
    registry_loop_local: bool = False  # registry name is (re)bound inside the loop
    registry_local_ctor: bool = False  # registry constructed inside the function
    via: Tuple[str, ...] = ()  # propagation chain, callee-first

    @property
    def key_space(self) -> str:
        """``fork`` keys live in their own namespace; the rest share one."""
        return "fork" if self.family == "fork" else "stream"


def collect_key_sites(graph: ProjectGraph) -> List[KeySite]:
    """Every stream key site in the project, parametric keys propagated."""
    sites: List[KeySite] = []
    for function in graph.iter_functions():
        module = graph.modules[function.module]
        if module.normalized.endswith(RNG_MODULE_SUFFIX):
            continue  # the primitives' own implementation
        loop_locals_cache: Dict[int, Set[str]] = {}
        for site in function.calls:
            extracted = _extract_site(graph, module, function, site, loop_locals_cache)
            if extracted is not None:
                sites.extend(extracted)
    sites.sort(key=lambda s: (s.path, s.line, s.col, s.family, s.pattern.display()))
    return sites


def _extract_site(
    graph: ProjectGraph,
    module: ModuleInfo,
    function: FunctionInfo,
    site: CallSite,
    loop_locals_cache: Dict[int, Set[str]],
) -> Optional[List[KeySite]]:
    call = site.node
    func = call.func
    family: Optional[str] = None
    key_expr: Optional[ast.expr] = None
    registry_expr: Optional[ast.expr] = None

    if isinstance(func, ast.Attribute) and func.attr in REGISTRY_METHODS:
        chain = attribute_chain(func)
        receiver = chain[:-1] if chain else None
        if receiver and _is_registry_name(receiver[-1]):
            family = func.attr
            key_expr = _argument(call, 0, "name")
            registry_expr = func.value
    elif isinstance(func, ast.Name) and func.id in SPAWN_CALLEES:
        family = func.id
        key_expr = _argument(call, 1, "name")
        registry_expr = _argument(call, 0, "root_seed") or _argument(call, 0, "seed")
    else:
        # spawn primitives reached through a module alias, e.g. rng.spawn_rng
        chain = attribute_chain(func)
        if chain and chain[-1] in SPAWN_CALLEES:
            family = chain[-1]
            key_expr = _argument(call, 1, "name")
            registry_expr = _argument(call, 0, "root_seed") or _argument(call, 0, "seed")

    if family is None or key_expr is None:
        return None

    registry = _registry_hint(registry_expr)
    registry_root = _root_name(registry_expr)
    # ``self``/``cls`` are formally parameters but a ``self.streams`` registry
    # belongs to the instance — callers looping over fresh instances get fresh
    # key spaces, so the interprocedural loop-shared check must not treat the
    # receiver as caller-supplied.
    registry_is_param = (
        registry_root is not None
        and registry_root in function.params
        and registry_root not in ("self", "cls")
    )
    registry_loop_local = False
    effective_loop_vars = site.loop_vars
    if site.in_loop:
        loop_locals = _loop_local_names(function, site, loop_locals_cache)
        # Names (re)bound inside the loop body vary per iteration just like
        # the loop targets (``replica_id = replica.replica_id``).
        effective_loop_vars = tuple(
            sorted(set(site.loop_vars) | loop_locals)
        )
        if registry_root is not None:
            registry_loop_local = registry_root in effective_loop_vars

    base = KeySite(
        path=function.path,
        line=site.line,
        col=site.col,
        function=function.qualname,
        family=family,
        registry=registry,
        pattern=pattern_from_expr(key_expr),
        in_loop=site.in_loop,
        loop_vars=effective_loop_vars,
        registry_is_param=registry_is_param,
        registry_loop_local=registry_loop_local,
        registry_local_ctor=_is_local_ctor(function, registry_root),
    )
    return _propagate(graph, function, base, key_expr, depth=0)


def _propagate(
    graph: ProjectGraph,
    function: FunctionInfo,
    base: KeySite,
    key_expr: ast.expr,
    depth: int,
) -> List[KeySite]:
    """Rewrite a parameter-valued key into the callers' argument patterns.

    ``spawn_fast_rng(root_seed, name)`` inside a wrapper like
    ``_ThreadRng.__init__`` says nothing about the key; the callers'
    ``f"replica-{replica_id}-n{cardinality}"`` arguments do.  When the key
    expression is exactly a parameter name, each resolved caller contributes
    one derived site anchored at the caller's call expression.
    """
    if depth >= MAX_PROPAGATION_DEPTH:
        return [base]
    if not isinstance(key_expr, ast.Name) or key_expr.id not in function.params:
        return [base]
    param = key_expr.id
    index = function.params.index(param)
    if function.params and function.params[0] in ("self", "cls"):
        index -= 1  # callers do not pass self
    derived: List[KeySite] = []
    for caller_name, caller_site in graph.callers_of(function.qualname):
        caller = graph.functions[caller_name]
        arg = _argument(caller_site.node, index, param)
        if arg is None:
            continue
        candidate = replace(
            base,
            path=caller.path,
            line=caller_site.line,
            col=caller_site.col,
            function=caller.qualname,
            pattern=pattern_from_expr(arg),
            in_loop=caller_site.in_loop,
            loop_vars=caller_site.loop_vars,
            via=base.via + (function.qualname,),
        )
        derived.extend(_propagate(graph, caller, candidate, arg, depth + 1))
    return derived if derived else [base]


def _argument(call: ast.Call, index: int, keyword: str) -> Optional[ast.expr]:
    if 0 <= index < len(call.args):
        arg = call.args[index]
        if isinstance(arg, ast.Starred):
            return None
        return arg
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _is_registry_name(name: str) -> bool:
    lowered = name.lower()
    return any(
        lowered == hint or lowered.endswith("_" + hint) or lowered.endswith(hint)
        for hint in REGISTRY_NAME_HINTS
    )


def _registry_hint(registry_expr: Optional[ast.expr]) -> str:
    if registry_expr is None:
        return "<unknown>"
    text = _expr_text(registry_expr)
    if text.endswith(".seed"):
        text = text[: -len(".seed")]
    return text


def _root_name(expr: Optional[ast.expr]) -> Optional[str]:
    if expr is None:
        return None
    chain = attribute_chain(expr)
    if chain:
        return chain[0]
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _is_local_ctor(function: FunctionInfo, registry_root: Optional[str]) -> bool:
    """Was the registry constructed inside this function?

    A locally-built ``RandomStreams(...)`` (or ``.fork(...)`` child) is a
    key space scoped to the function, so its keys can only collide with
    keys drawn in the same function — MV101 narrows the comparison group
    accordingly instead of comparing every ``streams``-named registry in
    the program against every other.
    """
    if registry_root is None or registry_root in function.params:
        return False
    for node in ast.walk(function.node):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == registry_root for t in node.targets
        ):
            continue
        value = node.value
        callee = value.func if isinstance(value, ast.Call) else None
        if callee is None:
            continue
        chain = attribute_chain(callee)
        if chain and (chain[-1] in ("RandomStreams", "fork") or "RandomStreams" in chain):
            return True
        # RandomStreams(seed).fork(name): the .fork receiver is a Call, so
        # attribute_chain is None — look one level down.
        if isinstance(callee, ast.Attribute) and callee.attr in ("fork", "RandomStreams"):
            return True
    return False


def _loop_local_names(
    function: FunctionInfo, site: CallSite, cache: Dict[int, Set[str]]
) -> Set[str]:
    """Names (re)bound inside the innermost loop containing ``site``.

    A registry constructed inside the loop body (``epoch_streams =
    RandomStreams(seed).fork(f"epoch-{e}")``) is a *fresh* key space per
    iteration, so a constant key drawn from it is not shared.
    """
    loop = _innermost_loop(function.node, site.node)
    if loop is None:
        return set()
    key = id(loop)
    if key not in cache:
        names: Set[str] = set()
        for node in ast.walk(loop):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                for sub in ast.walk(node.optional_vars):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        cache[key] = names
    return cache[key]


def _innermost_loop(root: ast.AST, target: ast.AST) -> Optional[ast.AST]:
    """The innermost For/While whose subtree contains ``target``."""
    result: List[Optional[ast.AST]] = [None]

    def descend(node: ast.AST, loop: Optional[ast.AST]) -> bool:
        if node is target:
            result[0] = loop
            return True
        for child in ast.iter_child_nodes(node):
            inner = child if isinstance(child, (ast.For, ast.AsyncFor, ast.While)) else None
            if descend(child, inner or loop):
                return True
        return False

    descend(root, None)
    return result[0]
