"""``python -m repro.analysis`` — lint the tree, exit non-zero on findings.

Also reachable as ``mvcom lint``; the harness CLI forwards its arguments
here verbatim.  Supported modes::

    python -m repro.analysis src/                  # text report
    python -m repro.analysis --format json src/    # machine-readable
    python -m repro.analysis --format sarif src/   # SARIF 2.1.0 for CI upload
    python -m repro.analysis --annotate src/       # GitHub workflow commands
    python -m repro.analysis --graph src/          # call/stream graph dump
    python -m repro.analysis --fix [--dry-run]     # MV004/MV005 autofixes
    python -m repro.analysis --write-baseline src/ # accept current findings

Exit codes: 0 clean, 1 findings (errors), 2 usage/configuration errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis.baseline import apply_baseline, load_baseline, render_baseline
from repro.analysis.config import load_config
from repro.analysis.diagnostics import Severity, render_report
from repro.analysis.engine import LintEngine, _walk_python_files, registered_rules
from repro.analysis.output import (
    render_annotations,
    render_graph,
    render_json,
    render_sarif,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the MV00x/MV1xx rules over ``paths``; exit 1 on error findings."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="MVCom determinism & contract linter (rules MV001-MV104)",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories to lint")
    parser.add_argument("--config", help="explicit pyproject.toml (default: nearest ancestor)")
    parser.add_argument("--list-rules", action="store_true", help="print the rule registry and exit")
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--annotate",
        action="store_true",
        help="also print GitHub ::error workflow commands (PR annotations)",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="dump the whole-program call/stream graph instead of linting",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply MV004/MV005 mechanical autofixes in place",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="with --fix: print the diff, change nothing",
    )
    parser.add_argument(
        "--baseline",
        help="accepted-findings file (default: the pyproject 'baseline' key)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any configured baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_class in registered_rules().items():
            print(f"{rule_id}  {rule_class.description}")
        return 0

    if args.dry_run and not args.fix:
        print("repro.analysis: error: --dry-run requires --fix", file=sys.stderr)
        return 2
    if args.config is not None and not os.path.isfile(args.config):
        print(f"repro.analysis: error: --config file not found: {args.config}", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        for path in missing:
            print(f"repro.analysis: error: no such file or directory: {path}", file=sys.stderr)
        return 2

    config = load_config(pyproject_path=args.config)
    engine = LintEngine(config=config)

    if args.graph:
        print(render_graph(engine.build_graph(args.paths)), end="")
        return 0

    if args.fix:
        return _run_fix(engine, args.paths, dry_run=args.dry_run)

    diagnostics = engine.lint_paths(args.paths)

    baseline_path = args.baseline or config.baseline_path()
    if args.write_baseline:
        if baseline_path is None:
            print(
                "repro.analysis: error: --write-baseline needs --baseline or a "
                "pyproject 'baseline' key",
                file=sys.stderr,
            )
            return 2
        with open(baseline_path, "w", encoding="utf-8") as handle:
            handle.write(render_baseline(diagnostics))
        print(f"repro.analysis: wrote {len(diagnostics)} finding(s) to {baseline_path}")
        return 0

    suppressed = 0
    if baseline_path is not None and not args.no_baseline:
        if not os.path.isfile(baseline_path):
            print(
                f"repro.analysis: error: baseline file not found: {baseline_path}",
                file=sys.stderr,
            )
            return 2
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as error:
            print(f"repro.analysis: error: {error}", file=sys.stderr)
            return 2
        diagnostics, suppressed = apply_baseline(diagnostics, baseline)

    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    if args.format == "json":
        print(render_json(diagnostics), end="")
    elif args.format == "sarif":
        print(render_sarif(diagnostics), end="")
    else:
        report = render_report(diagnostics)
        if report:
            print(report)
        else:
            suffix = f", {suppressed} baselined" if suppressed else ""
            print(f"repro.analysis: clean ({', '.join(args.paths)}{suffix})")
    if args.annotate and diagnostics:
        print(render_annotations(diagnostics))
    return 1 if errors else 0


def _run_fix(engine: LintEngine, paths: Sequence[str], dry_run: bool) -> int:
    from repro.analysis.fixes import fix_source, render_fix_diff

    changed = 0
    for path in _walk_python_files(paths):
        normalized = path.replace(os.sep, "/").lstrip("./")
        if engine.config.path_ignored(normalized):
            continue
        with open(path, "r", encoding="utf-8") as handle:
            before = handle.read()
        result = fix_source(before, path)
        for note in result.unfixable:
            print(f"repro.analysis: skip: {note}")
        if not result.changed:
            continue
        changed += 1
        if dry_run:
            print(render_fix_diff(normalized, before, result.source), end="")
        else:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(result.source)
            for note in result.applied:
                print(f"repro.analysis: fixed: {note}")
    verb = "would change" if dry_run else "changed"
    print(f"repro.analysis: --fix {verb} {changed} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
