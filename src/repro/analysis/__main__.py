"""``python -m repro.analysis`` — lint the tree, exit non-zero on findings."""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis.config import load_config
from repro.analysis.diagnostics import Severity, render_report
from repro.analysis.engine import registered_rules, run_analysis


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the MV00x rules over ``paths``; exit 1 when errors are found."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="MVCom determinism & contract linter (rules MV001-MV009)",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories to lint")
    parser.add_argument("--config", help="explicit pyproject.toml (default: nearest ancestor)")
    parser.add_argument("--list-rules", action="store_true", help="print the rule registry and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_class in registered_rules().items():
            print(f"{rule_id}  {rule_class.description}")
        return 0

    if args.config is not None and not os.path.isfile(args.config):
        print(f"repro.analysis: error: --config file not found: {args.config}", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        for path in missing:
            print(f"repro.analysis: error: no such file or directory: {path}", file=sys.stderr)
        return 2

    config = load_config(pyproject_path=args.config)
    diagnostics = run_analysis(args.paths, config=config)
    report = render_report(diagnostics)
    if report:
        print(report)
    else:
        print(f"repro.analysis: clean ({', '.join(args.paths)})")
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
