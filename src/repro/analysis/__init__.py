"""Static analysis & runtime contracts for the MVCom reproduction.

Two halves, one goal — machine-checked determinism and constraint safety:

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — an AST lint
  pass (rules MV001-MV009) enforcing the named-RNG-stream discipline, the
  no-wall-clock rule and the paper-contract documentation convention.
  Run it as ``python -m repro.analysis src/`` or ``mvcom lint src/``.
* :mod:`repro.analysis.contracts` — opt-in runtime assertions
  (``REPRO_CONTRACTS=1``) that solver results satisfy const. (3)-(4).

Everything here is stdlib-only so the linter runs in bare CI images.
"""

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.contracts import (
    ContractViolation,
    check_result_feasible,
    check_solution_feasible,
    contracts_enabled,
    feasible_result,
    finite_utility,
    sane_instance,
)
from repro.analysis.diagnostics import Diagnostic, Severity, render_report
from repro.analysis.engine import LintEngine, registered_rules, run_analysis

__all__ = [
    "AnalysisConfig",
    "ContractViolation",
    "Diagnostic",
    "LintEngine",
    "Severity",
    "check_result_feasible",
    "check_solution_feasible",
    "contracts_enabled",
    "feasible_result",
    "finite_utility",
    "load_config",
    "registered_rules",
    "render_report",
    "run_analysis",
    "sane_instance",
]
