"""Mechanical autofixes for MV004 and MV005 (``mvcom lint --fix``).

Only transformations that are provably behavior-preserving-or-better are
applied:

* **MV004** — a mutable default (``def f(x=[])``) becomes ``x=None`` plus an
  ``if x is None: x = []`` guard inserted right after the docstring, which is
  the rewrite the rule message prescribes.
* **MV005** — a bare ``except:`` becomes ``except Exception:`` *only when the
  handler body actually does something*; a pass-only bare handler is left
  alone (typing it would just trade the bare-except finding for the
  silent-swallow finding) and reported as not mechanically fixable.

The fixer is **byte-idempotent**: running it twice changes nothing on the
second pass, which a regression test asserts.  Edits are computed from AST
positions and applied bottom-up so earlier edits never shift later offsets.
"""

from __future__ import annotations

import ast
import difflib
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.rules import MutableDefaultRule, SilentExceptRule


@dataclass
class FixResult:
    """Outcome of fixing one source buffer."""

    source: str
    applied: List[str] = field(default_factory=list)  # human-readable edits
    unfixable: List[str] = field(default_factory=list)  # findings --fix skips

    @property
    def changed(self) -> bool:
        return bool(self.applied)


# one text edit: replace source[start:end] with text (offsets into the buffer)
_Edit = Tuple[int, int, str]


def fix_source(source: str, path: str = "<string>") -> FixResult:
    """Apply MV004/MV005 autofixes to one source string."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return FixResult(source=source, unfixable=[f"{path}: syntax error, skipped"])
    offsets = _line_offsets(source)
    edits: List[_Edit] = []
    applied: List[str] = []
    unfixable: List[str] = []

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _fix_mutable_defaults(node, source, offsets, edits, applied, unfixable, path)
        elif isinstance(node, ast.ExceptHandler):
            _fix_bare_except(node, source, offsets, edits, applied, unfixable, path)

    if not edits:
        return FixResult(source=source, unfixable=unfixable)
    new_source = _apply_edits(source, edits)
    # Never emit something that does not parse: fall back to the original.
    try:
        ast.parse(new_source, filename=path)
    except SyntaxError:  # pragma: no cover - safety net
        return FixResult(
            source=source, unfixable=unfixable + [f"{path}: fix produced a syntax error, reverted"]
        )
    return FixResult(source=new_source, applied=applied, unfixable=unfixable)


def render_fix_diff(path: str, before: str, after: str) -> str:
    """Unified diff for ``--fix --dry-run``."""
    diff = difflib.unified_diff(
        before.splitlines(keepends=True),
        after.splitlines(keepends=True),
        fromfile=f"a/{path}",
        tofile=f"b/{path}",
    )
    return "".join(diff)


# ---------------------------------------------------------------------- #
# MV004: mutable defaults
# ---------------------------------------------------------------------- #
def _fix_mutable_defaults(
    node: ast.AST,
    source: str,
    offsets: List[int],
    edits: List[_Edit],
    applied: List[str],
    unfixable: List[str],
    path: str,
) -> None:
    positional = node.args.posonlyargs + node.args.args
    pairs = list(
        zip(positional[len(positional) - len(node.args.defaults):], node.args.defaults)
    )
    pairs += [
        (arg, default)
        for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults)
        if default is not None
    ]
    guards: List[Tuple[str, str, int]] = []  # (param, original default text, line)
    for arg, default in pairs:
        if not MutableDefaultRule._mutable(default):
            continue
        start = _offset(offsets, default.lineno, default.col_offset)
        end = _offset(offsets, default.end_lineno, default.end_col_offset)
        guards.append((arg.arg, source[start:end], default.lineno))
    if not guards:
        return
    insertion = _body_insertion_point(node, source, offsets)
    if insertion is None:
        unfixable.append(
            f"{path}:{node.lineno}: MV004 in single-line {node.name}(); "
            "put the body on its own line to enable --fix"
        )
        return
    insert_at, indent = insertion
    for arg, default in pairs:
        if not MutableDefaultRule._mutable(default):
            continue
        start = _offset(offsets, default.lineno, default.col_offset)
        end = _offset(offsets, default.end_lineno, default.end_col_offset)
        default_text = source[start:end]
        edits.append((start, end, "None"))
        applied.append(
            f"{path}:{default.lineno}: MV004 default {default_text!r} for "
            f"'{arg.arg}' of {node.name}() -> None + guard"
        )
    lines = "".join(
        f"{indent}if {param} is None:\n{indent}    {param} = {default_text}\n"
        for param, default_text, _line in guards
    )
    if insert_at > 0 and source[insert_at - 1] != "\n":
        lines = "\n" + lines  # docstring at EOF without trailing newline
    edits.append((insert_at, insert_at, lines))


def _body_insertion_point(
    node: ast.AST, source: str, offsets: List[int]
) -> Optional[Tuple[int, str]]:
    """Offset of the guard-insertion line, or None for inline bodies.

    The guards go on the line of the first non-docstring body statement
    (i.e. after the docstring when there is one).
    """
    body = node.body
    first = body[0]
    has_docstring = (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
    )
    if has_docstring and len(body) == 1:
        # docstring-only body: insert after the docstring's last line
        insert_line = first.end_lineno + 1
        indent = " " * first.col_offset
        insert_at = (
            _offset(offsets, insert_line, 0)
            if insert_line <= len(offsets)
            else len(source)
        )
        return insert_at, indent
    anchor = body[1] if has_docstring else first
    line_start = _offset(offsets, anchor.lineno, 0)
    prefix = source[line_start : line_start + anchor.col_offset]
    if prefix.strip():
        return None  # `def f(x=[]): return x` — body shares the def line
    return line_start, " " * anchor.col_offset


# ---------------------------------------------------------------------- #
# MV005: bare except
# ---------------------------------------------------------------------- #
_BARE_EXCEPT_RE = re.compile(r"except(\s*)(\*?)(\s*):")


def _fix_bare_except(
    node: ast.ExceptHandler,
    source: str,
    offsets: List[int],
    edits: List[_Edit],
    applied: List[str],
    unfixable: List[str],
    path: str,
) -> None:
    if node.type is not None:
        return
    if SilentExceptRule._swallows(node.body):
        unfixable.append(
            f"{path}:{node.lineno}: MV005 bare 'except:' with pass-only body "
            "needs a real handler; not mechanically fixable"
        )
        return
    start = _offset(offsets, node.lineno, node.col_offset)
    window = source[start : start + 120]
    match = _BARE_EXCEPT_RE.match(window)
    if match is None or match.group(2):  # no match, or 'except*' group syntax
        return
    edits.append((start, start + match.end(), "except Exception:"))
    applied.append(
        f"{path}:{node.lineno}: MV005 bare 'except:' -> 'except Exception:'"
    )


# ---------------------------------------------------------------------- #
# text-edit plumbing
# ---------------------------------------------------------------------- #
def _line_offsets(source: str) -> List[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _offset(offsets: List[int], line: Optional[int], col: Optional[int]) -> int:
    return offsets[(line or 1) - 1] + (col or 0)


def _apply_edits(source: str, edits: List[_Edit]) -> str:
    for start, end, text in sorted(edits, key=lambda e: (e[0], e[1]), reverse=True):
        source = source[:start] + text + source[end:]
    return source
