"""Whole-program module / import / call graph for the MV1xx rule family.

The MV00x rules are per-file AST walks; the MV1xx family (stream-collision,
transitive wall-clock taint, pickling reachability, telemetry-guard flow)
needs to reason *across* files: which function calls which, along which
paths, and inside which loops.  This module builds that picture once per
lint run:

* :class:`ModuleInfo` — one parsed source file: module name, AST, an import
  map (local name -> dotted target) and every function/method defined in it.
* :class:`FunctionInfo` — one function/method/nested function with its
  resolved call sites (:class:`CallSite`) including loop context.
* :class:`ProjectGraph` — the project: modules by name/path, functions by
  qualified name, a reverse caller index, and deterministic call-path
  enumeration (:meth:`ProjectGraph.call_paths_to`).

Resolution is deliberately *conservative-precise*: an edge is only added
when the callee is confidently identified (module-level function in scope,
imported project function, ``self.method`` on the enclosing class, project
class construction, ``Class.method`` / ``mod.func`` attribute chains).
Attribute calls on unknown objects produce **no** edge, so the flow rules
built on top err toward missing an exotic path rather than inventing one.

Everything is stdlib-only and iteration order is explicitly sorted, so the
diagnostics derived from the graph are byte-deterministic across
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Path roots stripped when deriving a dotted module name from a file path.
_SOURCE_ROOTS = ("src/",)


def module_name_for_path(normalized: str) -> str:
    """``src/repro/core/se.py`` -> ``repro.core.se`` (posix-normalized input)."""
    name = normalized
    for root in _SOURCE_ROOTS:
        if name.startswith(root):
            name = name[len(root):]
            break
    if name.endswith(".py"):
        name = name[: -len(".py")]
    if name.endswith("/__init__"):
        name = name[: -len("/__init__")]
    return name.replace("/", ".")


def attribute_chain(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ``("a", "b", "c")``; ``None`` unless the base is a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    line: int
    col: int
    raw: str  # textual callee, for graph dumps and diagnostics
    target: Optional[str] = None  # resolved project qualname, if confident
    in_loop: bool = False  # lexically inside a for/while of the function
    loop_vars: Tuple[str, ...] = ()  # names bound by the enclosing loops


@dataclass
class FunctionInfo:
    """One function / method / nested function in the project."""

    qualname: str  # "repro.core.se.SEScheduler._apply_leave"
    name: str
    module: str
    path: str  # as given to the engine (for diagnostics)
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    line: int
    class_name: Optional[str] = None  # enclosing class simple name, if method
    parent: Optional[str] = None  # enclosing function qualname, if nested
    params: Tuple[str, ...] = ()  # positional+kwonly parameter names, in order
    calls: List[CallSite] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def is_nested(self) -> bool:
        return self.parent is not None

    def display(self) -> str:
        """Short human form used in diagnostics: drop the module prefix."""
        prefix = self.module + "."
        if self.qualname.startswith(prefix):
            return self.qualname[len(prefix):]
        return self.qualname


#: Pseudo-function name holding a module's top-level statements.
MODULE_BODY = "<module>"


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str  # dotted module name
    path: str
    normalized: str
    source: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)  # local -> dotted target
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)  # qualname ->
    toplevel_names: Set[str] = field(default_factory=set)  # defs/classes at module level
    classes: Dict[str, List[str]] = field(default_factory=dict)  # class -> method names

    def source_lines(self) -> List[str]:
        return self.source.splitlines()


class _FunctionCollector(ast.NodeVisitor):
    """Walk one module, recording functions, methods and their call sites."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.class_stack: List[str] = []
        self.func_stack: List[FunctionInfo] = []
        self.loop_stack: List[Tuple[str, ...]] = []  # names bound per loop level

    # ---------------------------------------------------------------- #
    # scope bookkeeping
    # ---------------------------------------------------------------- #
    def _qualify(self, name: str) -> str:
        parts = [self.module.name]
        parts.extend(self.class_stack)
        parts.extend(f.name for f in self.func_stack)
        parts.append(name)
        return ".".join(parts)

    def _current_function(self) -> FunctionInfo:
        if self.func_stack:
            return self.func_stack[-1]
        return self.module.functions[f"{self.module.name}.{MODULE_BODY}"]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self.func_stack:
            self.module.classes.setdefault(node.name, [])
            if not self.class_stack:
                self.module.toplevel_names.add(node.name)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_function(self, node) -> None:
        qualname = self._qualify(node.name)
        if not self.func_stack and not self.class_stack:
            self.module.toplevel_names.add(node.name)
        if self.class_stack and not self.func_stack:
            self.module.classes.setdefault(self.class_stack[-1], []).append(node.name)
        args = node.args
        params = tuple(
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        )
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            module=self.module.name,
            path=self.module.path,
            node=node,
            line=node.lineno,
            class_name=self.class_stack[-1] if self.class_stack else None,
            parent=self.func_stack[-1].qualname if self.func_stack else None,
            params=params,
        )
        self.module.functions[qualname] = info
        self.func_stack.append(info)
        saved_loops, self.loop_stack = self.loop_stack, []
        for child in node.body:
            self.visit(child)
        self.loop_stack = saved_loops
        self.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # ---------------------------------------------------------------- #
    # loops and calls
    # ---------------------------------------------------------------- #
    @staticmethod
    def _target_names(target: ast.expr) -> Tuple[str, ...]:
        names: List[str] = []
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.append(node.id)
        return tuple(names)

    def visit_For(self, node: ast.For) -> None:
        self.loop_stack.append(self._target_names(node.target))
        for child in node.body:
            self.visit(child)
        self.loop_stack.pop()
        for child in node.orelse:
            self.visit(child)
        self.visit(node.iter)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self.visit_For(node)  # same shape

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self.loop_stack.append(())
        for child in node.body:
            self.visit(child)
        self.loop_stack.pop()
        for child in node.orelse:
            self.visit(child)

    def visit_Call(self, node: ast.Call) -> None:
        raw = _callee_text(node.func)
        loop_vars: Tuple[str, ...] = tuple(
            name for names in self.loop_stack for name in names
        )
        self._current_function().calls.append(
            CallSite(
                node=node,
                line=node.lineno,
                col=node.col_offset,
                raw=raw,
                in_loop=bool(self.loop_stack),
                loop_vars=loop_vars,
            )
        )
        self.generic_visit(node)


def _callee_text(func: ast.expr) -> str:
    chain = attribute_chain(func)
    if chain is not None:
        return ".".join(chain)
    try:
        return ast.unparse(func)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return "<expr>"


def _collect_imports(module: ModuleInfo) -> None:
    """Fill ``module.imports``: local name -> dotted target."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module.imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    module.imports.setdefault(root, root)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = module.name.split(".")
                # level 1 = current package for modules, strip one extra for
                # each additional level.
                anchor = parts[: len(parts) - node.level]
                base = ".".join(anchor + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = f"{base}.{alias.name}" if base else alias.name


class ProjectGraph:
    """The whole-program view the MV1xx rules run on."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  # dotted name -> info
        self.by_path: Dict[str, ModuleInfo] = {}  # normalized path -> info
        self.functions: Dict[str, FunctionInfo] = {}  # qualname -> info
        self.callers: Dict[str, List[Tuple[str, CallSite]]] = {}

    # ---------------------------------------------------------------- #
    # construction
    # ---------------------------------------------------------------- #
    @classmethod
    def build(cls, sources: Dict[str, Tuple[str, str, ast.Module]]) -> "ProjectGraph":
        """Build from ``{path: (normalized, source, tree)}`` (pre-parsed files)."""
        graph = cls()
        for path in sorted(sources):
            normalized, source, tree = sources[path]
            name = module_name_for_path(normalized)
            module = ModuleInfo(
                name=name, path=path, normalized=normalized, source=source, tree=tree
            )
            # Pseudo-function for module-level statements (call-graph root).
            body = FunctionInfo(
                qualname=f"{name}.{MODULE_BODY}",
                name=MODULE_BODY,
                module=name,
                path=path,
                node=tree,
                line=1,
            )
            module.functions[body.qualname] = body
            _collect_imports(module)
            _FunctionCollector(module).visit(tree)
            graph.modules[name] = module
            graph.by_path[normalized] = module
        for module in graph.modules.values():
            graph.functions.update(module.functions)
        graph._resolve_calls()
        graph._index_callers()
        return graph

    # ---------------------------------------------------------------- #
    # call resolution
    # ---------------------------------------------------------------- #
    def _resolve_calls(self) -> None:
        for module_name in sorted(self.modules):
            module = self.modules[module_name]
            for qualname in sorted(module.functions):
                function = module.functions[qualname]
                for site in function.calls:
                    site.target = self._resolve_site(module, function, site)

    def _resolve_site(
        self, module: ModuleInfo, function: FunctionInfo, site: CallSite
    ) -> Optional[str]:
        func = site.node.func
        if isinstance(func, ast.Name):
            return self._resolve_name(module, function, func.id)
        chain = attribute_chain(func)
        if chain is None:
            return None
        return self._resolve_chain(module, function, chain)

    def _resolve_name(
        self, module: ModuleInfo, function: FunctionInfo, name: str
    ) -> Optional[str]:
        # nested function defined in an enclosing function of this scope
        scope: Optional[FunctionInfo] = function
        while scope is not None:
            candidate = f"{scope.qualname}.{name}"
            if candidate in module.functions:
                return candidate
            scope = module.functions.get(scope.parent) if scope.parent else None
        # module-level function in the same module
        candidate = f"{module.name}.{name}"
        if candidate in module.functions:
            return candidate
        # module-level class in the same module -> its __init__ if defined
        if name in module.classes:
            return self._class_target(module.name, name)
        # imported object
        dotted = module.imports.get(name)
        if dotted is not None:
            return self._resolve_dotted(dotted)
        return None

    def _resolve_chain(
        self, module: ModuleInfo, function: FunctionInfo, chain: Tuple[str, ...]
    ) -> Optional[str]:
        root, rest = chain[0], chain[1:]
        if root in ("self", "cls") and function.class_name is not None and len(rest) == 1:
            method = rest[0]
            if method in module.classes.get(function.class_name, ()):
                return f"{module.name}.{function.class_name}.{method}"
            return None
        if root in module.classes and len(rest) == 1:
            if rest[0] in module.classes[root]:
                return f"{module.name}.{root}.{rest[0]}"
            return None
        dotted = module.imports.get(root)
        if dotted is not None:
            return self._resolve_dotted(".".join((dotted,) + rest))
        return None

    def _resolve_dotted(self, dotted: str) -> Optional[str]:
        """Resolve a fully-dotted target against project modules/classes."""
        if dotted in self.functions:
            return dotted
        # longest module prefix match, then walk the remainder
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:cut])
            module = self.modules.get(module_name)
            if module is None:
                continue
            remainder = parts[cut:]
            if len(remainder) == 1:
                candidate = f"{module_name}.{remainder[0]}"
                if candidate in module.functions:
                    return candidate
                if remainder[0] in module.classes:
                    return self._class_target(module_name, remainder[0])
            elif len(remainder) == 2:
                candidate = f"{module_name}.{remainder[0]}.{remainder[1]}"
                if candidate in module.functions:
                    return candidate
            return None
        return None

    def _class_target(self, module_name: str, class_name: str) -> Optional[str]:
        init = f"{module_name}.{class_name}.__init__"
        if init in self.functions:
            return init
        return None

    def _index_callers(self) -> None:
        self.callers = {}
        for qualname in sorted(self.functions):
            function = self.functions[qualname]
            for site in function.calls:
                if site.target is not None:
                    self.callers.setdefault(site.target, []).append((qualname, site))

    # ---------------------------------------------------------------- #
    # queries
    # ---------------------------------------------------------------- #
    def function_at(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]

    def callers_of(self, qualname: str) -> List[Tuple[str, CallSite]]:
        return self.callers.get(qualname, [])

    def call_paths_to(
        self, qualname: str, max_paths: int = 3, max_depth: int = 12
    ) -> List[Tuple[str, ...]]:
        """Deterministic acyclic caller chains ending at ``qualname``.

        Each path runs entry-first, e.g. ``("repro.core.se.SEScheduler.solve",
        "repro.core.se.SEScheduler._apply_events", ...)``.  Roots are
        functions without in-project callers (module bodies included).
        Shortest paths first; ties broken lexicographically.
        """
        paths: List[Tuple[str, ...]] = []
        queue: List[Tuple[str, ...]] = [(qualname,)]
        while queue and len(paths) < max_paths:
            path = queue.pop(0)
            head = path[0]
            callers = sorted({caller for caller, _ in self.callers_of(head)})
            callers = [c for c in callers if c not in path]  # break cycles
            if not callers or len(path) >= max_depth:
                paths.append(path)
                continue
            for caller in callers:
                queue.append((caller,) + path)
        return paths

    def shortest_path_to(self, qualname: str) -> Tuple[str, ...]:
        paths = self.call_paths_to(qualname, max_paths=1)
        return paths[0] if paths else (qualname,)

    def render_path(self, path: Sequence[str]) -> str:
        """Human form of a call path: strip module prefixes, arrow-join."""
        shown = []
        for qualname in path:
            function = self.functions.get(qualname)
            shown.append(function.display() if function else qualname)
        return " -> ".join(shown)


def build_graph_from_sources(sources: Dict[str, Tuple[str, str]]) -> ProjectGraph:
    """Build from ``{path: (normalized, source)}``, parsing as needed.

    Files that fail to parse are skipped (the per-file pass already reports
    the MV000 syntax error).
    """
    parsed: Dict[str, Tuple[str, str, ast.Module]] = {}
    for path in sorted(sources):
        normalized, source = sources[path]
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        parsed[path] = (normalized, source, tree)
    return ProjectGraph.build(parsed)
