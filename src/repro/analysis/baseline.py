"""Checked-in baseline of accepted lint findings.

The baseline is the second suppression channel next to inline
``# repro: ignore[MVxxx]`` pragmas: pragmas mark *intentional* exceptions at
the site, the baseline parks *known* findings (e.g. when a new rule lands
against a large tree) so CI stays green while they are burned down.

Entries are **line-insensitive** fingerprints ``(path, rule, message)`` so
unrelated edits that shift line numbers do not invalidate the baseline.
Each entry suppresses at most one finding per run (a multiset match), so a
regression that *duplicates* a baselined finding still fails the build.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, sort_diagnostics

BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


def _fingerprint(diagnostic: Diagnostic) -> Fingerprint:
    path = diagnostic.path.replace("\\", "/").lstrip("./")
    return (path, diagnostic.rule_id, diagnostic.message)


def load_baseline(path: str) -> Counter:
    """Load a baseline file into a fingerprint multiset.

    Raises ``ValueError`` on a malformed file so a corrupted baseline fails
    loudly instead of silently suppressing nothing (or everything).
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a version-{BASELINE_VERSION} lint baseline")
    entries = document.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'entries' must be an array")
    fingerprints: Counter = Counter()
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(key), str) for key in ("path", "rule", "message")
        ):
            raise ValueError(f"{path}: entries[{index}] needs path/rule/message strings")
        fingerprints[(entry["path"], entry["rule"], entry["message"])] += 1
    return fingerprints


def apply_baseline(
    diagnostics: Sequence[Diagnostic], baseline: Counter
) -> Tuple[List[Diagnostic], int]:
    """Split findings into (kept, suppressed-count) against the baseline."""
    remaining = Counter(baseline)
    kept: List[Diagnostic] = []
    suppressed = 0
    for diagnostic in sort_diagnostics(diagnostics):
        fingerprint = _fingerprint(diagnostic)
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
            suppressed += 1
        else:
            kept.append(diagnostic)
    return kept, suppressed


def render_baseline(diagnostics: Sequence[Diagnostic]) -> str:
    """Serialize findings as a baseline document (``--write-baseline``)."""
    entries: List[Dict[str, str]] = []
    for diagnostic in sort_diagnostics(diagnostics):
        path, rule, message = _fingerprint(diagnostic)
        entries.append({"message": message, "path": path, "rule": rule})
    document = {"entries": entries, "version": BASELINE_VERSION}
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
