"""Rule registry and file walker for the :mod:`repro.analysis` linter.

A rule is a class with a ``rule_id``, a one-line ``description`` and a
``check(tree, context)`` method yielding :class:`Diagnostic` records.  Rules
register themselves via :func:`register_rule`; the engine parses each file
once and fans the AST out to every enabled rule, then applies the
``pyproject.toml`` enable/disable and path-ignore configuration.

Two rule shapes exist:

* **Per-file rules** (:class:`Rule`, MV0xx) see one ``(tree, context)`` at a
  time and are what :meth:`LintEngine.lint_source` runs — the fixture entry
  point used throughout the test suite.
* **Project rules** (:class:`ProjectRule`, MV1xx) see the whole-program
  :class:`~repro.analysis.graph.ProjectGraph` built once per run.  They run
  from :meth:`LintEngine.lint_paths` (the CLI path) and from
  :meth:`LintEngine.lint_sources` (the multi-file fixture entry point), never
  from single-snippet ``lint_source`` calls.

Findings on either path can be suppressed inline with a
``# repro: ignore[MVxxx]`` pragma on the flagged line (or on a comment-only
line immediately above it); ``MVxxx`` may be a comma-separated list.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Type

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.diagnostics import Diagnostic, Severity, sort_diagnostics


@dataclass(frozen=True)
class FileContext:
    """What a rule may know about the file under analysis."""

    path: str  # as given on the command line / test fixture
    normalized: str  # posix separators, no leading ./
    source: str

    def in_package(self, *suffixes: str) -> bool:
        """Does the file live under any of the given path suffixes?

        ``suffixes`` use posix form, e.g. ``"repro/core/"`` (package) or
        ``"repro/sim/rng.py"`` (single module).
        """
        for suffix in suffixes:
            if suffix.endswith("/"):
                if f"/{suffix}" in f"/{self.normalized}":
                    return True
            elif self.normalized == suffix or self.normalized.endswith("/" + suffix):
                return True
        return False


class Rule:
    """Base class for per-file lint rules."""

    rule_id: str = "MV000"
    description: str = ""
    severity: Severity = Severity.ERROR

    def check(self, tree: ast.AST, context: FileContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, context: FileContext, node: ast.AST, message: str) -> Diagnostic:
        """Convenience constructor anchoring a finding to an AST node."""
        return Diagnostic(
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules run over the project graph.

    Subclasses implement :meth:`check_project` instead of :meth:`check`; the
    per-file hook is a no-op so a ``ProjectRule`` mixed into a per-file pass
    (e.g. by ``lint_source``) contributes nothing rather than crashing.
    """

    def check(self, tree: ast.AST, context: FileContext) -> Iterable[Diagnostic]:
        return ()

    def check_project(self, graph) -> Iterable[Diagnostic]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_class.rule_id
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_class:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def registered_rules() -> Dict[str, Type[Rule]]:
    """Snapshot of the registry (importing the rule modules populates it)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)
    import repro.analysis.rules_graph  # noqa: F401  (registration side effect)

    return dict(sorted(_REGISTRY.items()))


# ---------------------------------------------------------------------- #
# inline suppression pragmas
# ---------------------------------------------------------------------- #
_PRAGMA_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


def pragma_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed there by ``# repro: ignore[...]``.

    A pragma trailing a statement applies to its own line; a pragma on a
    comment-only line applies to the next line (so long messages can carry
    the pragma above the flagged statement).
    """
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        target = lineno + 1 if line.lstrip().startswith("#") else lineno
        suppressions.setdefault(target, set()).update(rules)
    return suppressions


def _apply_pragmas(
    diagnostics: Iterable[Diagnostic], sources: Mapping[str, str]
) -> List[Diagnostic]:
    """Drop diagnostics whose (path, line) carries a matching pragma."""
    by_path: Dict[str, Dict[int, Set[str]]] = {}
    for path, source in sources.items():
        normalized = path.replace(os.sep, "/").lstrip("./")
        by_path[normalized] = pragma_suppressions(source)
    kept: List[Diagnostic] = []
    for diagnostic in diagnostics:
        normalized = diagnostic.path.replace(os.sep, "/").lstrip("./")
        suppressed = by_path.get(normalized, {}).get(diagnostic.line, set())
        if diagnostic.rule_id in suppressed:
            continue
        kept.append(diagnostic)
    return kept


class LintEngine:
    """Parse files once, run every enabled rule, collect diagnostics."""

    def __init__(self, config: Optional[AnalysisConfig] = None) -> None:
        self.config = config if config is not None else load_config()
        self.rules: List[Rule] = [
            rule_class()
            for rule_id, rule_class in registered_rules().items()
            if self.config.rule_enabled(rule_id)
        ]
        self.file_rules: List[Rule] = [
            rule for rule in self.rules if not isinstance(rule, ProjectRule)
        ]
        self.project_rules: List[ProjectRule] = [
            rule for rule in self.rules if isinstance(rule, ProjectRule)
        ]

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #
    def lint_paths(self, paths: Sequence[str]) -> List[Diagnostic]:
        """Lint files and/or directory trees (``.py`` files only).

        Runs the per-file rules on every file, then the project rules over
        the whole-program graph of all collected files, then filters inline
        pragmas.
        """
        diagnostics: List[Diagnostic] = []
        sources: Dict[str, str] = {}
        for path in _walk_python_files(paths):
            normalized = path.replace(os.sep, "/").lstrip("./")
            if self.config.path_ignored(normalized):
                continue
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            sources[path] = source
            diagnostics.extend(self._file_diagnostics(source, path))
        diagnostics.extend(self._project_diagnostics(sources))
        return sort_diagnostics(_apply_pragmas(diagnostics, sources))

    def lint_file(self, path: str) -> List[Diagnostic]:
        """Lint one file on disk (per-file rules only)."""
        normalized = path.replace(os.sep, "/").lstrip("./")
        if self.config.path_ignored(normalized):
            return []
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.lint_source(source, path)

    def lint_source(self, source: str, path: str = "<string>") -> List[Diagnostic]:
        """Lint a source string (the single-file test-fixture entry point).

        Only per-file rules run here: a lone snippet has no project graph,
        and keeping MV1xx out of this path keeps small fixtures focused on
        the rule they exercise.
        """
        normalized = path.replace(os.sep, "/").lstrip("./")
        if self.config.path_ignored(normalized):
            return []
        diagnostics = self._file_diagnostics(source, path)
        return sort_diagnostics(_apply_pragmas(diagnostics, {path: source}))

    def lint_sources(self, sources: Mapping[str, str]) -> List[Diagnostic]:
        """Lint a ``{path: source}`` fixture set with per-file AND project rules.

        The multi-file counterpart of :meth:`lint_source`, used to exercise
        the MV1xx cross-module rules without touching the filesystem.
        """
        diagnostics: List[Diagnostic] = []
        kept: Dict[str, str] = {}
        for path in sorted(sources):
            normalized = path.replace(os.sep, "/").lstrip("./")
            if self.config.path_ignored(normalized):
                continue
            kept[path] = sources[path]
            diagnostics.extend(self._file_diagnostics(sources[path], path))
        diagnostics.extend(self._project_diagnostics(kept))
        return sort_diagnostics(_apply_pragmas(diagnostics, kept))

    # ------------------------------------------------------------------ #
    # passes
    # ------------------------------------------------------------------ #
    def _file_diagnostics(self, source: str, path: str) -> List[Diagnostic]:
        normalized = path.replace(os.sep, "/").lstrip("./")
        context = FileContext(path=path, normalized=normalized, source=source)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Diagnostic(
                    path=path,
                    line=error.lineno or 1,
                    column=(error.offset or 1) - 1,
                    rule_id="MV000",
                    message=f"syntax error: {error.msg}",
                )
            ]
        diagnostics: List[Diagnostic] = []
        for rule in self.file_rules:
            if self.config.path_ignored(normalized, rule.rule_id):
                continue
            diagnostics.extend(rule.check(tree, context))
        return diagnostics

    def _project_diagnostics(self, sources: Mapping[str, str]) -> List[Diagnostic]:
        if not self.project_rules or not sources:
            return []
        from repro.analysis.graph import build_graph_from_sources

        graph = build_graph_from_sources(
            {
                path: (path.replace(os.sep, "/").lstrip("./"), source)
                for path, source in sources.items()
            }
        )
        diagnostics: List[Diagnostic] = []
        for rule in self.project_rules:
            for diagnostic in rule.check_project(graph):
                normalized = diagnostic.path.replace(os.sep, "/").lstrip("./")
                if self.config.path_ignored(normalized, rule.rule_id):
                    continue
                diagnostics.append(diagnostic)
        return diagnostics

    def build_graph(self, paths: Sequence[str]):
        """Build (and return) the project graph for ``--graph`` dumps."""
        from repro.analysis.graph import build_graph_from_sources

        sources: Dict[str, tuple] = {}
        for path in _walk_python_files(paths):
            normalized = path.replace(os.sep, "/").lstrip("./")
            if self.config.path_ignored(normalized):
                continue
            with open(path, "r", encoding="utf-8") as handle:
                sources[path] = (normalized, handle.read())
        return build_graph_from_sources(sources)


def _walk_python_files(paths: Sequence[str]) -> Iterator[str]:
    seen = set()
    for path in paths:
        if os.path.isdir(path):
            for directory, subdirs, files in os.walk(path):
                subdirs[:] = sorted(d for d in subdirs if d != "__pycache__")
                for name in sorted(files):
                    if name.endswith(".py"):
                        full = os.path.join(directory, name)
                        if full not in seen:
                            seen.add(full)
                            yield full
        elif path.endswith(".py") and os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path


def run_analysis(
    paths: Sequence[str],
    config: Optional[AnalysisConfig] = None,
) -> List[Diagnostic]:
    """One-call API used by the CLI, ``__main__`` and the tests."""
    return LintEngine(config=config).lint_paths(paths)
