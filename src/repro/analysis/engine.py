"""Rule registry and file walker for the :mod:`repro.analysis` linter.

A rule is a class with a ``rule_id``, a one-line ``description`` and a
``check(tree, context)`` method yielding :class:`Diagnostic` records.  Rules
register themselves via :func:`register_rule`; the engine parses each file
once and fans the AST out to every enabled rule, then applies the
``pyproject.toml`` enable/disable and path-ignore configuration.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.diagnostics import Diagnostic, Severity, sort_diagnostics


@dataclass(frozen=True)
class FileContext:
    """What a rule may know about the file under analysis."""

    path: str  # as given on the command line / test fixture
    normalized: str  # posix separators, no leading ./
    source: str

    def in_package(self, *suffixes: str) -> bool:
        """Does the file live under any of the given path suffixes?

        ``suffixes`` use posix form, e.g. ``"repro/core/"`` (package) or
        ``"repro/sim/rng.py"`` (single module).
        """
        for suffix in suffixes:
            if suffix.endswith("/"):
                if f"/{suffix}" in f"/{self.normalized}":
                    return True
            elif self.normalized == suffix or self.normalized.endswith("/" + suffix):
                return True
        return False


class Rule:
    """Base class for lint rules."""

    rule_id: str = "MV000"
    description: str = ""
    severity: Severity = Severity.ERROR

    def check(self, tree: ast.AST, context: FileContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, context: FileContext, node: ast.AST, message: str) -> Diagnostic:
        """Convenience constructor anchoring a finding to an AST node."""
        return Diagnostic(
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_class.rule_id
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_class:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def registered_rules() -> Dict[str, Type[Rule]]:
    """Snapshot of the registry (importing ``rules`` populates it)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return dict(sorted(_REGISTRY.items()))


class LintEngine:
    """Parse files once, run every enabled rule, collect diagnostics."""

    def __init__(self, config: Optional[AnalysisConfig] = None) -> None:
        self.config = config if config is not None else load_config()
        self.rules: List[Rule] = [
            rule_class()
            for rule_id, rule_class in registered_rules().items()
            if self.config.rule_enabled(rule_id)
        ]

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #
    def lint_paths(self, paths: Sequence[str]) -> List[Diagnostic]:
        """Lint files and/or directory trees (``.py`` files only)."""
        diagnostics: List[Diagnostic] = []
        for path in _walk_python_files(paths):
            diagnostics.extend(self.lint_file(path))
        return sort_diagnostics(diagnostics)

    def lint_file(self, path: str) -> List[Diagnostic]:
        """Lint one file on disk."""
        normalized = path.replace(os.sep, "/").lstrip("./")
        if self.config.path_ignored(normalized):
            return []
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.lint_source(source, path)

    def lint_source(self, source: str, path: str = "<string>") -> List[Diagnostic]:
        """Lint a source string (the test-fixture entry point)."""
        normalized = path.replace(os.sep, "/").lstrip("./")
        if self.config.path_ignored(normalized):
            return []
        context = FileContext(path=path, normalized=normalized, source=source)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Diagnostic(
                    path=path,
                    line=error.lineno or 1,
                    column=(error.offset or 1) - 1,
                    rule_id="MV000",
                    message=f"syntax error: {error.msg}",
                )
            ]
        diagnostics: List[Diagnostic] = []
        for rule in self.rules:
            if self.config.path_ignored(normalized, rule.rule_id):
                continue
            diagnostics.extend(rule.check(tree, context))
        return sort_diagnostics(diagnostics)


def _walk_python_files(paths: Sequence[str]) -> Iterator[str]:
    seen = set()
    for path in paths:
        if os.path.isdir(path):
            for directory, subdirs, files in os.walk(path):
                subdirs[:] = sorted(d for d in subdirs if d != "__pycache__")
                for name in sorted(files):
                    if name.endswith(".py"):
                        full = os.path.join(directory, name)
                        if full not in seen:
                            seen.add(full)
                            yield full
        elif path.endswith(".py") and os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path


def run_analysis(
    paths: Sequence[str],
    config: Optional[AnalysisConfig] = None,
) -> List[Diagnostic]:
    """One-call API used by the CLI, ``__main__`` and the tests."""
    return LintEngine(config=config).lint_paths(paths)
