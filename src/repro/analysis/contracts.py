"""Opt-in runtime contracts for scheduler boundaries.

The static rules (:mod:`repro.analysis.rules`) prove the code *can't*
silently break determinism; this module checks, at runtime, that results
crossing the core boundaries actually satisfy the paper's constraints:

* feasibility — :math:`\\sum_i x_i \\ge N_{min}` (const. 3) and
  :math:`\\sum_i x_i s_i \\le \\hat C` (const. 4);
* utility finiteness — no NaN/inf ever leaves a solver.

Checks are **off by default** so the SE race's hot path stays untouched;
set ``REPRO_CONTRACTS=1`` before importing :mod:`repro` to arm them.  The
decorators read the flag at decoration time and return the wrapped
function *unchanged* when disarmed — a true zero-overhead pass-through.
"""

from __future__ import annotations

import functools
import math
import os
from typing import Any, Callable, Optional, TypeVar

ENV_FLAG = "REPRO_CONTRACTS"

_TRUTHY = {"1", "true", "yes", "on"}

F = TypeVar("F", bound=Callable[..., Any])


class ContractViolation(AssertionError):
    """A runtime contract (feasibility / finiteness) was broken."""


def contracts_enabled() -> bool:
    """Is ``REPRO_CONTRACTS`` set to a truthy value right now?"""
    return os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY


# ---------------------------------------------------------------------- #
# direct checks (usable without the decorators)
# ---------------------------------------------------------------------- #
def check_finite_utility(utility: float, where: str = "result") -> None:
    """Raise unless ``utility`` is a finite float."""
    if not math.isfinite(utility):
        raise ContractViolation(f"{where}: utility {utility!r} is not finite")


def check_solution_feasible(solution: Any, where: str = "solution") -> None:
    """Assert const. (3) ``count >= n_min`` and const. (4) ``weight <= Ĉ``.

    Accepts anything shaped like :class:`repro.core.solution.Solution`:
    ``instance`` (with ``n_min``/``capacity``), ``count``, ``weight`` and
    ``utility`` attributes.
    """
    instance = solution.instance
    if solution.count < instance.n_min:
        raise ContractViolation(
            f"{where}: cardinality {solution.count} violates "
            f"N_min={instance.n_min} (const. 3)"
        )
    if solution.weight > instance.capacity:
        raise ContractViolation(
            f"{where}: packed TXs {solution.weight} exceed "
            f"capacity Ĉ={instance.capacity} (const. 4)"
        )
    check_finite_utility(float(solution.utility), where)


def check_result_feasible(result: Any, instance: Any = None, where: str = "result") -> None:
    """Validate a solver result against its epoch instance.

    Understands ``Solution`` (has ``.instance``), ``SEResult`` (has
    ``final_instance`` + ``best_*``) and ``ScheduleResult`` (mask/utility/
    weight/count, instance supplied by the caller).  Unknown shapes are
    ignored rather than rejected so decorated call sites never have to
    special-case return types.
    """
    if result is None:
        return
    if hasattr(result, "instance") and hasattr(result, "count"):
        check_solution_feasible(result, where)
        return
    target = getattr(result, "final_instance", None) or instance
    utility = getattr(result, "best_utility", None)
    if utility is None:
        utility = getattr(result, "utility", None)
    if utility is not None:
        check_finite_utility(float(utility), where)
    if target is None:
        return
    count = getattr(result, "best_count", None)
    if count is None:
        count = getattr(result, "count", None)
    weight = getattr(result, "best_weight", None)
    if weight is None:
        weight = getattr(result, "weight", None)
    if count is not None and count < target.n_min:
        raise ContractViolation(
            f"{where}: cardinality {count} violates N_min={target.n_min} (const. 3)"
        )
    if weight is not None and weight > target.capacity:
        raise ContractViolation(
            f"{where}: packed TXs {weight} exceed capacity Ĉ={target.capacity} (const. 4)"
        )


def check_instance_sane(instance: Any, where: str = "instance") -> None:
    """Assert an :class:`EpochInstance`'s derived arrays are finite/consistent."""
    values = getattr(instance, "values", None)
    if values is not None:
        import numpy as np

        if not np.isfinite(np.asarray(values, dtype=float)).all():
            raise ContractViolation(f"{where}: non-finite shard values v_i")
    if instance.n_min > instance.num_shards:
        raise ContractViolation(
            f"{where}: N_min={instance.n_min} exceeds |I_j|={instance.num_shards}"
        )


# ---------------------------------------------------------------------- #
# decorators (zero-overhead when REPRO_CONTRACTS is unset)
# ---------------------------------------------------------------------- #
def _passthrough_unless_enabled(decorate: Callable[[F], F]) -> Callable[[F], F]:
    def apply(func: F) -> F:
        if not contracts_enabled():
            return func
        return decorate(func)

    return apply


def feasible_result(func: Optional[F] = None, *, where: Optional[str] = None):
    """Decorator: validate the returned Solution/SEResult/ScheduleResult.

    The wrapped callable's first positional argument after ``self`` (when
    present) is assumed to be the epoch instance, which covers every solver
    ``solve(self, instance, ...)`` boundary in this repo.
    """

    def decorate(inner: F) -> F:
        label = where or f"{inner.__module__}.{inner.__qualname__}"

        @functools.wraps(inner)
        def wrapper(*args, **kwargs):
            result = inner(*args, **kwargs)
            instance = _find_instance(args, kwargs)
            check_result_feasible(result, instance=instance, where=label)
            return result

        return wrapper  # type: ignore[return-value]

    applier = _passthrough_unless_enabled(decorate)
    if func is not None:
        return applier(func)
    return applier


def finite_utility(func: Optional[F] = None, *, where: Optional[str] = None):
    """Decorator: assert a float-returning function never yields NaN/inf."""

    def decorate(inner: F) -> F:
        label = where or f"{inner.__module__}.{inner.__qualname__}"

        @functools.wraps(inner)
        def wrapper(*args, **kwargs):
            result = inner(*args, **kwargs)
            check_finite_utility(float(result), label)
            return result

        return wrapper  # type: ignore[return-value]

    applier = _passthrough_unless_enabled(decorate)
    if func is not None:
        return applier(func)
    return applier


def sane_instance(func: Optional[F] = None, *, where: Optional[str] = None):
    """Decorator: validate a returned :class:`EpochInstance`."""

    def decorate(inner: F) -> F:
        label = where or f"{inner.__module__}.{inner.__qualname__}"

        @functools.wraps(inner)
        def wrapper(*args, **kwargs):
            result = inner(*args, **kwargs)
            check_instance_sane(result, label)
            return result

        return wrapper  # type: ignore[return-value]

    applier = _passthrough_unless_enabled(decorate)
    if func is not None:
        return applier(func)
    return applier


def _find_instance(args: tuple, kwargs: dict) -> Any:
    if "instance" in kwargs:
        return kwargs["instance"]
    for argument in args:
        if hasattr(argument, "n_min") and hasattr(argument, "capacity"):
            return argument
    return None
