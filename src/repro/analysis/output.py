"""Output renderers for the linter: JSON, SARIF 2.1.0 and graph dumps.

Every renderer is **byte-deterministic**: all iteration happens over sorted
keys, ``json.dumps`` uses ``sort_keys=True``, and nothing depends on hash
ordering, so the same tree produces the same bytes under any
``PYTHONHASHSEED`` (a subprocess test asserts this).

The SARIF output targets the `SARIF 2.1.0
<https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_ shape
consumed by GitHub code scanning.  The container has no ``jsonschema``, so
:func:`validate_sarif` is a stdlib structural validator covering the subset
of the schema the upload path actually rejects on; CI runs it against the
generated artifact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity, sort_diagnostics

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro.analysis"
TOOL_URI = "https://github.com/mvcom/mvcom-repro"


def _normalized_uri(path: str) -> str:
    return path.replace("\\", "/").lstrip("./")


# ---------------------------------------------------------------------- #
# JSON
# ---------------------------------------------------------------------- #
def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Machine-readable report; one object per finding plus a summary."""
    ordered = sort_diagnostics(diagnostics)
    errors = sum(1 for d in ordered if d.severity is Severity.ERROR)
    document = {
        "diagnostics": [
            {
                "path": _normalized_uri(d.path),
                "line": d.line,
                "column": d.column,
                "rule": d.rule_id,
                "severity": d.severity.value,
                "message": d.message,
            }
            for d in ordered
        ],
        "summary": {"errors": errors, "warnings": len(ordered) - errors},
        "tool": TOOL_NAME,
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------- #
# SARIF
# ---------------------------------------------------------------------- #
def render_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    """SARIF 2.1.0 report for CI upload / GitHub annotations."""
    from repro.analysis.engine import registered_rules

    ordered = sort_diagnostics(diagnostics)
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": rule_class.description or rule_id},
            "defaultConfiguration": {
                "level": rule_class.severity.value
                if rule_class.severity is Severity.WARNING
                else "error"
            },
        }
        for rule_id, rule_class in registered_rules().items()
    ]
    results = [
        {
            "ruleId": d.rule_id,
            "level": "error" if d.severity is Severity.ERROR else "warning",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _normalized_uri(d.path),
                            "uriBaseId": "ROOT",
                        },
                        "region": {
                            "startLine": max(d.line, 1),
                            "startColumn": d.column + 1,
                        },
                    }
                }
            ],
        }
        for d in ordered
    ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"ROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


_SARIF_LEVELS = ("none", "note", "warning", "error")


def validate_sarif(document: Any) -> List[str]:
    """Structural SARIF 2.1.0 validation; returns a list of problems.

    Covers the invariants GitHub's upload endpoint and the published JSON
    schema enforce on the subset of SARIF we emit: top-level version/runs,
    driver name + rule ids, and per-result ruleId/message/level/location
    shapes with 1-based regions.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not isinstance(run, dict):
            problems.append(f"{where} is not an object")
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        if not isinstance(driver, dict) or not isinstance(driver.get("name"), str):
            problems.append(f"{where}.tool.driver.name missing or not a string")
            rule_ids: set = set()
        else:
            rules = driver.get("rules", [])
            if not isinstance(rules, list):
                problems.append(f"{where}.tool.driver.rules is not an array")
                rules = []
            rule_ids = set()
            for rule_index, rule in enumerate(rules):
                if not isinstance(rule, dict) or not isinstance(rule.get("id"), str):
                    problems.append(
                        f"{where}.tool.driver.rules[{rule_index}].id missing"
                    )
                else:
                    rule_ids.add(rule["id"])
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"{where}.results is not an array")
            continue
        for result_index, result in enumerate(results):
            rwhere = f"{where}.results[{result_index}]"
            if not isinstance(result, dict):
                problems.append(f"{rwhere} is not an object")
                continue
            if not isinstance(result.get("ruleId"), str):
                problems.append(f"{rwhere}.ruleId missing or not a string")
            elif rule_ids and result["ruleId"] not in rule_ids:
                problems.append(f"{rwhere}.ruleId {result['ruleId']!r} not declared")
            message = result.get("message")
            if not isinstance(message, dict) or not isinstance(message.get("text"), str):
                problems.append(f"{rwhere}.message.text missing or not a string")
            level = result.get("level")
            if level is not None and level not in _SARIF_LEVELS:
                problems.append(f"{rwhere}.level {level!r} not one of {_SARIF_LEVELS}")
            locations = result.get("locations", [])
            if not isinstance(locations, list):
                problems.append(f"{rwhere}.locations is not an array")
                continue
            for loc_index, location in enumerate(locations):
                lwhere = f"{rwhere}.locations[{loc_index}]"
                physical = (
                    location.get("physicalLocation")
                    if isinstance(location, dict)
                    else None
                )
                if not isinstance(physical, dict):
                    problems.append(f"{lwhere}.physicalLocation missing")
                    continue
                artifact = physical.get("artifactLocation")
                if not isinstance(artifact, dict) or not isinstance(
                    artifact.get("uri"), str
                ):
                    problems.append(f"{lwhere}...artifactLocation.uri missing")
                region = physical.get("region")
                if region is not None:
                    start = region.get("startLine") if isinstance(region, dict) else None
                    if not isinstance(start, int) or start < 1:
                        problems.append(f"{lwhere}...region.startLine must be >= 1")
                    column = region.get("startColumn") if isinstance(region, dict) else None
                    if column is not None and (not isinstance(column, int) or column < 1):
                        problems.append(f"{lwhere}...region.startColumn must be >= 1")
    return problems


# ---------------------------------------------------------------------- #
# GitHub workflow annotations
# ---------------------------------------------------------------------- #
def render_annotations(diagnostics: Sequence[Diagnostic]) -> str:
    """``::error file=...`` workflow commands; GitHub turns these into PR
    annotations without needing the code-scanning upload permission."""
    lines = []
    for d in sort_diagnostics(diagnostics):
        kind = "error" if d.severity is Severity.ERROR else "warning"
        message = d.message.replace("%", "%25").replace("\n", "%0A")
        lines.append(
            f"::{kind} file={_normalized_uri(d.path)},line={d.line},"
            f"col={d.column + 1},title={d.rule_id}::{message}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# graph dump (``mvcom lint --graph``)
# ---------------------------------------------------------------------- #
def render_graph(graph) -> str:
    """Human-readable call/stream-graph dump for debugging the MV1xx rules."""
    from repro.analysis.streamkeys import collect_key_sites

    lines: List[str] = []
    modules = graph.modules
    lines.append(f"# modules ({len(modules)})")
    for name in sorted(modules):
        lines.append(f"{name}  {_normalized_uri(modules[name].path)}")

    edges: List[str] = []
    for function in graph.iter_functions():
        for site in function.calls:
            if site.target is None:
                continue
            marker = " [loop]" if site.in_loop else ""
            edges.append(
                f"{function.qualname} -> {site.target}  "
                f"{_normalized_uri(function.path)}:{site.line}{marker}"
            )
    lines.append("")
    lines.append(f"# call edges ({len(edges)})")
    lines.extend(sorted(edges))

    sites = collect_key_sites(graph)
    lines.append("")
    lines.append(f"# stream key sites ({len(sites)})")
    for site in sites:
        flags = []
        if site.in_loop:
            flags.append("loop")
        if site.registry_is_param:
            flags.append("param-registry")
        if site.registry_local_ctor:
            flags.append("local-registry")
        if site.via:
            flags.append("via=" + ",".join(site.via))
        suffix = f" [{' '.join(flags)}]" if flags else ""
        lines.append(
            f"{_normalized_uri(site.path)}:{site.line} {site.family} "
            f"{site.pattern.display()!r} registry={site.registry or '?'}{suffix}"
        )
    return "\n".join(lines) + "\n"
