"""Fig. 2 -- two-phase latency measured on the Elastico substrate.

(a) mean formation / consensus latency vs network size: formation dominates
    and grows roughly linearly;
(b) CDFs of both latency terms at a fixed size: random within a band.
"""

import numpy as np

from repro.harness.experiments import run_fig02_two_phase_latency
from repro.harness.report import render_table, write_csv


def test_fig02_two_phase_latency(benchmark, bench_results):
    result = benchmark.pedantic(run_fig02_two_phase_latency, rounds=1, iterations=1)
    bench_results["fig02"] = result

    rows = result["rows"]
    print()
    print(render_table(rows, title="Fig. 2(a): two-phase latency vs network size"))
    print(f"linear fit: slope={result['linear_fit']['slope']:.3f} s/node, "
          f"R^2={result['linear_fit']['r_squared']:.3f}")
    write_csv("fig02_latency_vs_size.csv", rows)

    cdf = result["cdf"]
    cdf_rows = [
        {"which": "formation", "p50": np.percentile(cdf["formation"][0], 50),
         "p90": np.percentile(cdf["formation"][0], 90)},
        {"which": "consensus", "p50": np.percentile(cdf["consensus"][0], 50),
         "p90": np.percentile(cdf["consensus"][0], 90)},
    ]
    print(render_table(cdf_rows, title=f"Fig. 2(b): latency CDFs at {cdf['num_nodes']} nodes"))
    write_csv(
        "fig02_cdf.csv",
        [{"which": "formation", "latency_s": v, "cdf": f}
         for v, f in zip(*cdf["formation"])]
        + [{"which": "consensus", "latency_s": v, "cdf": f}
           for v, f in zip(*cdf["consensus"])],
    )

    # Shape assertions (paper claims):
    # 1. formation latency consumes the large portion,
    for row in rows:
        assert row["mean_formation_s"] > 3 * row["mean_consensus_s"]
    # 2. formation grows ~linearly with network size,
    assert result["linear_fit"]["slope"] > 0
    assert result["linear_fit"]["r_squared"] > 0.6
    # 3. consensus latency stays flat in network size,
    consensus = [row["mean_consensus_s"] for row in rows]
    assert max(consensus) < 2.5 * min(consensus)
    # 4. both CDFs are spread over a band (not degenerate).
    for which in ("formation", "consensus"):
        values = np.asarray(cdf[which][0])
        assert values.std() > 0.05 * values.mean()
