"""Fig. 14 -- online execution with consecutive joining events.

Paper setup: |I_j|=50, C=40K, Gamma=25, 23 join events per epoch (40
arrived committees minus 17 initial), alpha in {1.5, 5, 10}.  Claims: SE's
converged utility meets/beats the baselines; utilities improve with alpha.
SE runs fully online (joins mid-run); baselines are given the final arrived
set, i.e. the comparison is biased *against* SE.
"""

from repro.harness.experiments import run_fig14_online_joining
from repro.harness.report import render_table, traces_table, traces_to_rows, write_csv


def test_fig14_online_joining(benchmark):
    result = benchmark.pedantic(run_fig14_online_joining, rounds=1, iterations=1)

    print()
    rows = []
    for panel, content in result["panels"].items():
        print(traces_table(content["traces"], title=f"Fig. 14 {panel} ({content['joins']} joins)"))
        write_csv(f"fig14_{panel.replace('=', '')}_traces.csv",
                  traces_to_rows(content["traces"]))
        for name, value in content["utility"].items():
            rows.append({"panel": panel, "algorithm": name, "utility": round(value, 1)})
    print(render_table(rows, title="Fig. 14 converged utilities"))
    write_csv("fig14_converged.csv", rows)

    panels = result["panels"]
    alphas = sorted(panels, key=lambda p: float(p.split("=")[1]))
    # 1. The paper's 23 joining events.
    for panel in alphas:
        assert panels[panel]["joins"] == 23
    # 2. Utilities grow with alpha for every algorithm.
    for algorithm in ("SE", "SA", "DP", "WOA"):
        series = [panels[p]["utility"][algorithm] for p in alphas]
        assert series == sorted(series), (algorithm, series)
    # 3. Online SE stays within a whisker of the best offline baseline and
    #    above WOA, despite scheduling while committees were still arriving.
    for panel in alphas:
        utilities = panels[panel]["utility"]
        assert utilities["SE"] >= 0.97 * max(utilities.values()), panel
        assert utilities["SE"] >= utilities["WOA"], panel
