"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper -- these quantify the knobs our reproduction had
to pin down:

* **beta** (the log-sum-exp sharpness): larger beta concentrates the Gibbs
  distribution (Remark 1's loss shrinks) but Remark 2 predicts slower
  mixing; at the paper's utility scales beta >= ~0.01 already behaves
  near-greedily.
* **solution-thread subsampling** (``max_solution_threads``): Alg. 1 wants
  one thread per cardinality; we cap it for speed and check the cost.
* **DP objective**: the throughput-blind-to-age reading (our default,
  reproducing Fig. 10's low DP Valuable Degree) vs a utility-aware DP.
* **extra reference points**: greedy density and random search, bounding
  how much of SE's margin is guidance vs sampling volume.
* **multi-epoch carry-over** (Fig. 3): throughput with and without the
  refused-committee carry-over rule.
"""

from dataclasses import replace

import numpy as np

from repro.baselines import (
    DynamicProgrammingScheduler,
    GreedyDensityScheduler,
    RandomSearchScheduler,
)
from repro.core.pipeline import MultiEpochScheduler
from repro.core.problem import MVComConfig
from repro.core.se import SEConfig, StochasticExploration
from repro.data.workload import WorkloadConfig, generate_epoch_workload, multi_epoch_workloads
from repro.harness.report import render_table, write_csv
from repro.metrics.valuable_degree import valuable_degree

WORKLOAD = WorkloadConfig(num_committees=200, capacity=200_000, alpha=1.5, seed=77)


def test_ablation_beta_sweep(benchmark):
    workload = generate_epoch_workload(WORKLOAD)

    def sweep():
        rows = []
        for beta in (0.0005, 0.005, 0.05, 0.5, 2.0):
            result = StochasticExploration(
                SEConfig(beta=beta, num_threads=5, max_iterations=3_000,
                         convergence_window=800, seed=3)
            ).solve(workload.instance)
            rows.append({"beta": beta, "utility": round(result.best_utility, 1),
                         "iterations": result.iterations})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Ablation: SE utility vs beta"))
    write_csv("ablation_beta.csv", rows)
    utilities = [row["utility"] for row in rows]
    # Sharp beta must not lose to near-uniform beta on converged utility.
    assert utilities[-1] >= 0.98 * max(utilities)


def test_ablation_solution_thread_cap(benchmark):
    workload = generate_epoch_workload(WORKLOAD)

    def sweep():
        rows = []
        for cap in (8, 16, 32, 64, None):
            result = StochasticExploration(
                SEConfig(num_threads=5, max_iterations=3_000, convergence_window=800,
                         seed=3, max_solution_threads=cap)
            ).solve(workload.instance)
            rows.append({"max_solution_threads": str(cap),
                         "threads": len(result.thread_cardinalities),
                         "utility": round(result.best_utility, 1)})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Ablation: SE utility vs solution-thread cap"))
    write_csv("ablation_thread_cap.csv", rows)
    # Aggressive subsampling costs at most ~2% vs the full Alg.-1 family.
    utilities = [row["utility"] for row in rows]
    assert min(utilities) >= 0.98 * max(utilities)


def test_ablation_dp_objective_and_extras(benchmark):
    workload = generate_epoch_workload(WORKLOAD)
    instance = workload.instance

    def run():
        rows = []
        for name, scheduler in [
            ("DP-throughput", DynamicProgrammingScheduler(seed=1, objective="throughput")),
            ("DP-utility", DynamicProgrammingScheduler(seed=1, objective="utility")),
            ("Greedy", GreedyDensityScheduler(seed=1)),
            ("Random", RandomSearchScheduler(seed=1)),
        ]:
            result = scheduler.solve(instance, 2_000)
            rows.append({
                "scheduler": name,
                "utility": round(result.utility, 1),
                "valuable_degree": round(valuable_degree(instance, result.mask), 1),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Ablation: DP objective + extra baselines"))
    write_csv("ablation_dp_extras.csv", rows)
    by_name = {row["scheduler"]: row for row in rows}
    # The utility-aware DP recovers most of the throughput-DP's utility gap
    # and far more Valuable Degree -- evidence the paper's low-VD DP is the
    # age-blind variant.
    assert by_name["DP-utility"]["utility"] >= by_name["DP-throughput"]["utility"]
    assert by_name["DP-utility"]["valuable_degree"] > 1.5 * by_name["DP-throughput"]["valuable_degree"]
    # Guided greedy beats unguided random sampling.
    assert by_name["Greedy"]["utility"] > by_name["Random"]["utility"]


def test_ablation_carry_over_rule(benchmark):
    """Fig. 3's carry-over vs dropping refused shards outright."""
    config = MVComConfig(alpha=5.0, capacity=30_000)
    workloads = multi_epoch_workloads(
        WorkloadConfig(num_committees=30, capacity=30_000, alpha=5.0, seed=21), num_epochs=4
    )
    epochs = [sorted(w.shards, key=lambda s: s.latency)[:24] for w in workloads]

    def greedy_mask(instance):
        order = np.argsort(-(instance.values / np.maximum(instance.tx_counts, 1)))
        mask = np.zeros(instance.num_shards, dtype=bool)
        weight = 0
        for position in order:
            tx = int(instance.tx_counts[position])
            if weight + tx <= instance.capacity:
                mask[position] = True
                weight += tx
        return mask

    def run():
        with_carry = MultiEpochScheduler(greedy_mask, config).run(epochs)
        no_carry = sum(
            MultiEpochScheduler(greedy_mask, config).run([epoch]).total_throughput
            for epoch in epochs
        )
        return {
            "with_carry_over_txs": with_carry.total_throughput,
            "without_carry_over_txs": no_carry,
            "carried_admitted": sum(r.carried_permitted for r in with_carry.reports),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table([row], title="Ablation: Fig. 3 carry-over rule"))
    write_csv("ablation_carry_over.csv", [row])
    # Re-admitting refused shards can only add TXs to the root chain.
    assert row["with_carry_over_txs"] >= row["without_carry_over_txs"]
    assert row["carried_admitted"] > 0
