"""Fig. 12 -- convergence while varying alpha in {1.5, 5, 10}.

Paper claims: increasing alpha makes the converged utilities of every
algorithm grow; SE stays on top across the sweep.
"""

from repro.harness.experiments import run_fig12_vary_alpha
from repro.harness.report import render_table, traces_table, traces_to_rows, write_csv


def test_fig12_vary_alpha(benchmark):
    result = benchmark.pedantic(run_fig12_vary_alpha, rounds=1, iterations=1)

    print()
    summary_rows = []
    for panel, content in result["panels"].items():
        print(traces_table(content["traces"], title=f"Fig. 12 {panel} (|Ij|=50, C=50K, Gamma=25)"))
        write_csv(f"fig12_{panel.replace('=', '')}_traces.csv",
                  traces_to_rows(content["traces"]))
        for name, value in content["converged"].items():
            summary_rows.append({"panel": panel, "algorithm": name,
                                 "converged_utility": round(value, 1)})
    print(render_table(summary_rows, title="Fig. 12 converged utilities"))
    write_csv("fig12_converged.csv", summary_rows)

    panels = result["panels"]
    alphas = sorted(panels, key=lambda p: float(p.split("=")[1]))
    # 1. For every algorithm, utility grows with alpha.
    for algorithm in ("SE", "SA", "DP", "WOA"):
        series = [panels[p]["converged"][algorithm] for p in alphas]
        assert series == sorted(series), (algorithm, series)
    # 2. SE tops (or ties) every panel.
    for panel in alphas:
        converged = panels[panel]["converged"]
        assert converged["SE"] >= 0.99 * max(converged.values()), panel
