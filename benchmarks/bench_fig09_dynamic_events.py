"""Fig. 9 -- dynamic event handling.

(a) a committee fails then recovers within one epoch: the current utility
    dips at the failure (large perturbation) and SE quickly re-converges;
(b) committees join consecutively: SE re-converges within a few hundred
    iterations after each join.
"""

import numpy as np

from repro.harness.experiments import run_fig09_dynamic_events
from repro.harness.report import sample_trace, render_table, write_csv
from repro.harness.textplot import line_plot


def test_fig09_leave_rejoin_and_joins(benchmark):
    result = benchmark.pedantic(run_fig09_dynamic_events, rounds=1, iterations=1)

    part_a = result["leave_rejoin"]
    part_b = result["consecutive_joins"]
    print()
    print(line_plot({"current utility": part_a["current_trace"]},
                    title="Fig. 9(a): leave @1000 / rejoin @2000"))
    print(line_plot({"current utility": part_b["current_trace"]},
                    title="Fig. 9(b): consecutive joins"))
    print(render_table(sample_trace(part_a["current_trace"], points=14),
                       title="Fig. 9(a): current utility, leave @1000 / rejoin @2000"))
    print(render_table(sample_trace(part_b["current_trace"], points=14),
                       title="Fig. 9(b): current utility under consecutive joins"))
    write_csv("fig09a_trace.csv",
              [{"iteration": i, "current_utility": float(v)}
               for i, v in enumerate(part_a["current_trace"])])
    write_csv("fig09b_trace.csv",
              [{"iteration": i, "current_utility": float(v)}
               for i, v in enumerate(part_b["current_trace"])])

    # --- part (a): failure perturbation and re-convergence -------------- #
    trace = np.asarray(part_a["current_trace"], dtype=np.float64)
    events = dict((kind, it) for it, kind in part_a["events"])
    fail_at, rejoin_at = events["leave"], events["join"]
    before_fail = trace[max(fail_at - 200, 0):fail_at].mean()
    just_after_fail = trace[fail_at:fail_at + 50].min()
    # 1. The failure visibly perturbs the current utility downwards.
    assert just_after_fail < before_fail
    # 2. SE re-converges before the rejoin: the pre-rejoin plateau recovers
    #    most of the lost utility on the trimmed space.
    recovered = trace[rejoin_at - 200:rejoin_at].mean()
    assert recovered > just_after_fail
    # 3. After the rejoin, utility meets or beats the pre-failure level.
    assert trace[-200:].mean() >= 0.97 * before_fail

    # --- part (b): consecutive joins ------------------------------------ #
    trace_b = np.asarray(part_b["current_trace"], dtype=np.float64)
    join_iterations = [it for it, kind in part_b["events"]]
    assert len(join_iterations) >= 10
    # Utility grows substantially as committees keep joining.
    start = trace_b[: max(join_iterations[0], 1)].mean()
    peak = trace_b.max()
    assert peak > 1.15 * start
