"""Telemetry overhead on the SE hot path (acceptance gate for repro.obs).

Three claims, all on a 100-committee solve:

1. **Determinism** -- with the default ``NULL_TELEMETRY`` and with a live
   hub attached, ``StochasticExploration.solve`` returns byte-identical
   results on a fixed seed (instrumentation draws no randomness and never
   branches on telemetry state).
2. **Null-path overhead < 5%** -- the instrumentation a Null run pays is
   exactly: one hoisted ``enabled`` load per round, a ``transitions``
   counter increment and a ``last_swap`` tuple assignment per fired
   replica.  We micro-time those very operations at the solve's measured
   round/firing counts and bound their share of the solve wall time.
3. **Enabled-path + aggregation overhead < 10%** -- a live hub fanning
   into a streaming :class:`~repro.obs.metrics.MetricsAggregator` sink
   (sketch adds, rate bookkeeping, windowed means on every record) stays
   within 10% of the Null solve, so ``mvcom serve``-style always-on
   metrics are affordable.
"""

import time

import numpy as np

from repro.core.se import SEConfig, StochasticExploration
from repro.data.workload import WorkloadConfig, generate_epoch_workload
from repro.obs.metrics import MetricsAggregator
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry

NUM_COMMITTEES = 100
GAMMA = 10
CONFIG = SEConfig(num_threads=GAMMA, max_iterations=600, convergence_window=300, seed=0)


def _workload():
    return generate_epoch_workload(
        WorkloadConfig(num_committees=NUM_COMMITTEES, capacity=1000 * NUM_COMMITTEES, seed=0)
    )


def _solve(instance, telemetry=NULL_TELEMETRY):
    return StochasticExploration(CONFIG, telemetry=telemetry).solve(instance)


def _best_interleaved(n, fns):
    """Best-of-``n`` for several paths, measured round-robin.

    Interleaving keeps a transient load spike from landing entirely on one
    path's measurements, which matters for the relative-overhead asserts
    on a busy shared box.
    """
    bests = [float("inf")] * len(fns)
    for _ in range(n):
        for index, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if elapsed < bests[index]:
                bests[index] = elapsed
    return bests


def test_se_telemetry_determinism_and_overhead(perf_recorder):
    instance = _workload().instance

    # -- claim 1: byte-identical results, Null vs live hub ----------------
    base = _solve(instance)
    ring = RingBufferSink()
    traced = _solve(instance, telemetry=Telemetry(sinks=[ring]))
    assert np.array_equal(base.best_mask, traced.best_mask)
    assert base.best_utility == traced.best_utility
    assert np.array_equal(base.utility_trace, traced.utility_trace)
    assert np.array_equal(base.current_trace, traced.current_trace)
    assert base.iterations == traced.iterations
    assert len(ring) > 0, "live hub captured nothing"

    # -- claim 2: Null-path instrumentation cost < 5% of the solve -------
    null_s, live_s, metrics_s = _best_interleaved(
        5,
        [
            lambda: _solve(instance),
            lambda: _solve(instance, telemetry=Telemetry(sinks=[RingBufferSink()])),
            lambda: _solve(instance, telemetry=Telemetry(sinks=[MetricsAggregator()])),
        ],
    )

    # Replay the Null path's added work at the measured scale: per round one
    # guard load + counter reset, per firing one increment + one tuple store.
    rounds = base.iterations
    firings = rounds * GAMMA
    sink = NULL_TELEMETRY
    holder = [None]
    start = time.perf_counter()
    for _ in range(rounds):
        traced_flag = sink.enabled
        transitions = 0
        for i in range(GAMMA):
            transitions += 1
            holder[0] = (i, i + 1)
            if traced_flag:  # pragma: no cover - Null path
                pass
    guard_s = time.perf_counter() - start
    overhead_pct = 100.0 * guard_s / null_s
    assert overhead_pct < 5.0, (
        f"Null-path instrumentation costs {overhead_pct:.2f}% of a "
        f"{NUM_COMMITTEES}-committee solve (budget: 5%)"
    )

    # -- claim 3: live hub + streaming MetricsAggregator sink < 10% ------
    metrics_overhead_pct = 100.0 * max(0.0, metrics_s - null_s) / null_s
    assert metrics_overhead_pct < 10.0, (
        f"live hub + MetricsAggregator costs {metrics_overhead_pct:.2f}% over "
        f"the Null solve on {NUM_COMMITTEES} committees (budget: 10%)"
    )
    aggregator = MetricsAggregator()
    _solve(instance, telemetry=Telemetry(sinks=[aggregator]))
    aggregated_series = len(aggregator.snapshot()["series"])

    perf_recorder(
        "se_convergence_100c",
        wall_s=null_s,
        trace=base.utility_trace,
        committees=NUM_COMMITTEES,
        gamma=GAMMA,
        traced_wall_s=live_s,
        traced_records=len(ring),
        null_overhead_pct=round(overhead_pct, 4),
        metrics_wall_s=metrics_s,
        metrics_overhead_pct=round(metrics_overhead_pct, 4),
        metrics_series=aggregated_series,
        firings=firings,
    )
    print()
    print(
        f"100-committee solve: null={null_s * 1e3:.1f}ms  live={live_s * 1e3:.1f}ms  "
        f"metrics={metrics_s * 1e3:.1f}ms  null-path overhead={overhead_pct:.3f}%  "
        f"metrics overhead={metrics_overhead_pct:.2f}%  records={len(ring)}  "
        f"series={aggregated_series}"
    )
