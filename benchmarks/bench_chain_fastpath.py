"""Chain fastpath bench: closed-form PBFT/formation kernels + parallel sweeps.

Two claims from the chain substrate (:mod:`repro.chain.fastpath`) and the
sweep runner (:mod:`repro.harness.parallel`):

* ``fastpath`` replaces the per-message DES with one batched
  order-statistics kernel call per epoch (plus DES replays for
  Byzantine-primary committees).  Both engines are timed back to back on
  the Fig. 2 campaign at every network size, so the speedup at the
  largest size IS asserted (same-machine ratio); distributional parity
  is asserted via two-sample KS on the formation and consensus latency
  samples at alpha=0.01 (:mod:`repro.metrics.ks` -- the fastpath is
  validated statistically, not byte-wise, see the module docstring).
* the parallel sweep runner fans figure trials over the spawn-safe
  process pool and must stay **byte-identical** to the serial loop --
  asserted hard here.  Its wall-clock speedup is *recorded*, not
  asserted: shared CI runners routinely expose a single core.
  ``cpu_count`` rides along so a reader can judge the number.

Records land in ``BENCH_se_convergence.json`` under ``chain_fastpath``.
"""

import dataclasses
import json
import os
import time

from repro.chain.measurement import measure_two_phase_latency
from repro.chain.params import ChainParams
from repro.harness import experiments
from repro.harness.artifacts import _ArtifactEncoder
from repro.harness.presets import PRESETS
from repro.metrics.ks import ks_critical_value, ks_pvalue, ks_statistic

#: Fig. 2 campaign shape (mirrors PRESETS["fig02"]).
_FIG02 = PRESETS["fig02"]
_SIZES = _FIG02.extras["network_sizes"]
_EPOCHS = int(_FIG02.extras["epochs_per_size"])
_COMMITTEE_SIZE = int(_FIG02.extras["committee_size"])
#: min-of-N timing repetitions per (engine, size) cell.
_REPS = 5


def _timed_measurement(engine, num_nodes):
    """Best wall over ``_REPS`` runs of one Fig. 2 size, plus the samples."""
    base = ChainParams(
        num_nodes=min(_SIZES), committee_size=_COMMITTEE_SIZE, seed=_FIG02.seeds[0]
    )
    best_wall, measurement = None, None
    for _ in range(_REPS):
        started = time.perf_counter()
        (measurement,) = measure_two_phase_latency(
            base, [num_nodes], epochs_per_size=_EPOCHS, chain_engine=engine
        )
        wall = time.perf_counter() - started
        best_wall = wall if best_wall is None else min(best_wall, wall)
    return best_wall, measurement


def _ks_cell(sample_a, sample_b):
    """(statistic, p-value, rejected-at-0.01) for one latency comparison."""
    d_stat = ks_statistic(sample_a, sample_b)
    n, m = len(sample_a), len(sample_b)
    return {
        "d": d_stat,
        "p": ks_pvalue(d_stat, n, m),
        "rejected": d_stat >= ks_critical_value(n, m, alpha=0.01),
    }


def test_chain_fastpath_bench(perf_recorder):
    # ---- DES vs fastpath across the Fig. 2 campaign ------------------- #
    # Warm both engines (numpy dispatch, geometry caches) off the clock.
    for engine in ("des", "fastpath"):
        _timed_measurement(engine, min(_SIZES))

    per_size = []
    for num_nodes in _SIZES:
        des_wall, des_m = _timed_measurement("des", num_nodes)
        fast_wall, fast_m = _timed_measurement("fastpath", num_nodes)
        formation_ks = _ks_cell(des_m.formation_latencies, fast_m.formation_latencies)
        consensus_ks = _ks_cell(des_m.consensus_latencies, fast_m.consensus_latencies)
        per_size.append(
            {
                "num_nodes": num_nodes,
                "des_wall_s": des_wall,
                "fastpath_wall_s": fast_wall,
                "speedup": des_wall / fast_wall,
                "formation_ks_p": formation_ks["p"],
                "consensus_ks_p": consensus_ks["p"],
            }
        )
        # Distributional parity at every size, both latency terms.
        assert not formation_ks["rejected"], f"formation KS rejected at n={num_nodes}"
        assert not consensus_ks["rejected"], f"consensus KS rejected at n={num_nodes}"

    largest = per_size[-1]
    assert largest["num_nodes"] == max(_SIZES)
    # Acceptance floor: >= 5x at the largest Fig. 2 network size
    # (same-machine ratio, min-of-reps on both sides).
    assert largest["speedup"] >= 5.0, f"fastpath speedup {largest['speedup']:.2f}x < 5x"

    # ---- sweep runner: serial vs parallel, byte-identical ------------- #
    sweep_preset = dataclasses.replace(
        PRESETS["fig10"],
        seeds=(1, 2, 3),
        num_committees=12,
        capacity=10_000,
        se_iterations=80,
        baseline_iterations=80,
        convergence_window=40,
    )
    started = time.perf_counter()
    serial = experiments.run_fig10_valuable_degree(sweep_preset, parallel=False)
    sweep_serial_wall = time.perf_counter() - started
    started = time.perf_counter()
    pooled = experiments.run_fig10_valuable_degree(
        sweep_preset, parallel=True, sweep_workers=3
    )
    sweep_parallel_wall = time.perf_counter() - started
    sweep_byte_identical = json.dumps(serial, cls=_ArtifactEncoder, sort_keys=True) == (
        json.dumps(pooled, cls=_ArtifactEncoder, sort_keys=True)
    )
    assert sweep_byte_identical

    print()
    print("chain fastpath bench (Fig. 2 campaign, DES vs closed-form kernel)")
    print(f"  {'nodes':>6} {'des':>9} {'fastpath':>9} {'speedup':>8} "
          f"{'KS p (form)':>12} {'KS p (cons)':>12}")
    for row in per_size:
        print(
            f"  {row['num_nodes']:>6} {row['des_wall_s'] * 1e3:>7.1f}ms "
            f"{row['fastpath_wall_s'] * 1e3:>7.1f}ms {row['speedup']:>7.2f}x "
            f"{row['formation_ks_p']:>12.3f} {row['consensus_ks_p']:>12.3f}"
        )
    print(f"  sweep fig10 (3 seeds, {os.cpu_count()} cpus): "
          f"serial {sweep_serial_wall:.2f}s, parallel {sweep_parallel_wall:.2f}s, "
          f"byte-identical {sweep_byte_identical}")

    perf_recorder(
        "chain_fastpath",
        cpu_count=os.cpu_count(),
        committee_size=_COMMITTEE_SIZE,
        epochs_per_size=_EPOCHS,
        timing_reps=_REPS,
        per_size=per_size,
        largest_size_speedup=largest["speedup"],
        sweep_figure="fig10",
        sweep_trials=len(sweep_preset.seeds),
        sweep_workers=3,
        sweep_serial_wall_s=sweep_serial_wall,
        sweep_parallel_wall_s=sweep_parallel_wall,
        sweep_speedup=sweep_serial_wall / sweep_parallel_wall,
        sweep_byte_identical=sweep_byte_identical,
    )
