"""Eth2-scale bench: the full 1024-shard x 128-member epoch, memory-bounded.

Runs the real :func:`repro.harness.eth2scale.run_eth2scale` curve
(8 192 -> 32 768 -> 131 072 nodes, the top size being ``SHARD_COUNT =
2**10`` shards of ``MAX_PERIOD_COMMITTEE_SIZE = 2**7`` members) through
the chunked fastpath kernels and the streaming crosslink aggregator, and
asserts the tentpole budget claims:

* the curve has at least three points (the recorded scaling series);
* every size completes -- committees form and shards are submitted;
* peak RSS stays under 2 GiB at the largest size (``ru_maxrss`` is
  process-lifetime monotone, so the final reading bounds the whole run).

The record lands in ``BENCH_eth2scale.json`` at the repo root, written
by the runner itself (this is the one bench whose artifact is the
deliverable, not a ``perf_recorder`` side channel).
"""

from pathlib import Path

from repro.harness.eth2scale import run_eth2scale, render_points

from conftest import emit

#: Repo-root record (next to BENCH_se_convergence.json).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_eth2scale.json"

#: The tentpole budget: a full eth2-scale epoch in under 2 GiB.
_PEAK_RSS_BUDGET_KIB = 2 * 1024 * 1024


def test_eth2scale_bench(capsys):
    record = run_eth2scale(out_path=str(BENCH_PATH))
    points = record["points"]
    emit(capsys, "eth2scale bench (chunked kernels + streaming crosslinks)")
    emit(capsys, render_points(points))

    assert len(points) >= 3, "the scaling curve needs at least three sizes"
    assert points[-1]["nodes"] >= 131_072, "the curve must reach eth2 scale"
    assert record["committee_size"] == 128
    for point in points:
        assert point["committees_formed"] > 0
        assert point["shards_submitted"] > 0
        assert point["epoch_wall_s"] > 0.0
    peak = points[-1]["peak_rss_kib"]
    assert peak is not None, "getrusage must be available on the bench host"
    assert peak < _PEAK_RSS_BUDGET_KIB, (
        f"eth2-scale epoch peaked at {peak / 1024:.0f} MiB, "
        f"budget is {_PEAK_RSS_BUDGET_KIB / 1024:.0f} MiB"
    )
    assert BENCH_PATH.exists()
