"""Fig. 11 -- convergence while varying |I_j| in {500, 800, 1000}.

Paper claims: SE converges above the baselines (~20-30% in the paper's
runs); the SE-vs-WOA gap persists as |I_j| grows; DP's utility overtakes
SA's at large |I_j|; WOA has the lowest converged utility.  Our faithful
baselines close most of the paper's SA gap (documented in EXPERIMENTS.md);
the ordering SE >= SA > DP > WOA and the DP-vs-SA trend remain.
"""

from repro.harness.experiments import run_fig11_vary_committees
from repro.harness.report import render_table, traces_table, traces_to_rows, write_csv


def test_fig11_vary_committees(benchmark):
    result = benchmark.pedantic(run_fig11_vary_committees, rounds=1, iterations=1)

    print()
    summary_rows = []
    for panel, content in result["panels"].items():
        print(traces_table(content["traces"], title=f"Fig. 11 {panel}"))
        write_csv(f"fig11_{panel.replace('|', '').replace('=', '')}_traces.csv",
                  traces_to_rows(content["traces"]))
        for name, value in content["converged"].items():
            summary_rows.append({"panel": panel, "algorithm": name,
                                 "converged_utility": round(value, 1)})
    print(render_table(summary_rows, title="Fig. 11 converged utilities"))
    write_csv("fig11_converged.csv", summary_rows)

    for panel, content in result["panels"].items():
        converged = content["converged"]
        # 1. SE finishes at/above every baseline (small statistical slack).
        assert converged["SE"] >= 0.99 * max(converged.values()), panel
        # 2. WOA is the weakest algorithm at every size.
        assert converged["WOA"] <= min(converged["SE"], converged["SA"]), panel

    # 3. DP gains on SA as |I_j| grows (the paper's crossover direction).
    sizes = sorted(result["panels"], key=lambda p: int(p.split("=")[1]))
    dp_over_sa = [
        result["panels"][p]["converged"]["DP"] / result["panels"][p]["converged"]["SA"]
        for p in sizes
    ]
    assert dp_over_sa[-1] >= dp_over_sa[0] - 0.02
