"""Steady-state serve bench: warm-started vs cold per-epoch scheduling.

Runs :func:`repro.harness.serve.run_serve_comparison` — the ``mvcom
serve`` loop twice over byte-identical drifting committee streams, once
warm-chained through :class:`SEWarmState` and once with a fresh solver
per epoch — and asserts the PR's acceptance claim: warm starts reach 99%
of the per-epoch target utility more than 1.5x faster than cold starts
at Γ=25 under a drifting population.

The primary speedup is counted in race rounds (machine-independent; the
recorded artifact reproduces anywhere); wall-clock steady-state numbers
(solves/s, tx scheduled/s, p50/p99 decision latency) ride along for the
service-level picture.  The record lands in ``BENCH_serve.json`` at the
repo root, written by the runner itself (like the eth2scale bench, the
artifact is the deliverable).
"""

from pathlib import Path

from repro.harness.serve import ServeConfig, run_serve_comparison

from conftest import emit

#: Repo-root record (next to BENCH_eth2scale.json).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: The acceptance shape: Γ=25 replicas over a drifting 100-committee
#: population (10% churn/epoch), 8 epochs of the Bitcoin-trace feeder.
BENCH_CONFIG = ServeConfig(
    epochs=8,
    num_committees=100,
    churn=0.1,
    gamma=25,
    max_iterations=2000,
    convergence_window=400,
    seed=0,
)

#: The tentpole claim: warm time-to-99%-utility beats cold by > 1.5x.
_MIN_WARM_SPEEDUP = 1.5


def test_serve_bench(capsys):
    record = run_serve_comparison(BENCH_CONFIG, out_path=str(BENCH_PATH))

    emit(capsys, "serve bench (warm-started vs cold per-epoch scheduling)")
    emit(
        capsys,
        f"  shape: Gamma={record['gamma']}, {record['num_committees']} committees, "
        f"churn {record['churn']}, {record['epochs']} epochs",
    )
    for row in record["per_epoch"]:
        emit(
            capsys,
            f"  epoch {row['epoch']}: warm {row['warm_rounds_to_99']:5d} rounds, "
            f"cold {row['cold_rounds_to_99']:5d} rounds to 99% of shared target",
        )
    emit(
        capsys,
        f"  round speedup {record['warm_speedup_rounds_to_99']:.2f}x, "
        f"wall speedup {record['warm_speedup_wall_to_99']:.2f}x",
    )
    for mode in ("warm", "cold"):
        report = record[mode]
        emit(
            capsys,
            f"  {mode}: {report['solves_per_s']:.2f} solves/s, "
            f"{report['tx_scheduled_per_s']:,.0f} tx/s, "
            f"p50 {report['decision_p50_s']*1e3:.1f} ms, "
            f"p99 {report['decision_p99_s']*1e3:.1f} ms",
        )

    assert record["gamma"] == 25, "the acceptance shape pins Gamma=25"
    assert record["warm_speedup_rounds_to_99"] > _MIN_WARM_SPEEDUP, (
        f"warm start reached 99% utility only "
        f"{record['warm_speedup_rounds_to_99']:.2f}x faster than cold; "
        f"the acceptance floor is {_MIN_WARM_SPEEDUP}x"
    )
    for mode in ("warm", "cold"):
        report = record[mode]
        assert report["solves_per_s"] > 0.0
        assert report["decision_p50_s"] > 0.0
        assert report["decision_p99_s"] >= report["decision_p50_s"]
        assert not report["slo_violations"], (
            f"{mode} serve run violated SLOs: {report['slo_violations']}"
        )
    # Every epoch after the shared bootstrap saw genuine drift.
    assert all(
        row["joined"] > 0 or row["departed"] > 0
        for row in record["warm"]["rows"][1:]
    ), "the bench stream must actually drift the population"
    assert BENCH_PATH.exists()
