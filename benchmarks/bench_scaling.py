"""Scaling / performance-regression benches.

These are the only benches that measure *runtime* rather than regenerating
a figure: the SE race at paper scale and the full-epoch protocol must stay
laptop-fast, or the figure suite becomes unusable.  Bounds are deliberately
generous (5-10x typical) so they only trip on genuine regressions.
"""

import time

from repro.chain import ChainParams, ElasticoSimulation
from repro.core.problem import MVComConfig
from repro.core.se import SEConfig, StochasticExploration
from repro.data.workload import WorkloadConfig, generate_epoch_workload


def test_se_race_throughput_at_paper_scale(benchmark):
    """2,000 race rounds at |I_j|=400 arrived (the Fig. 8 instance)."""
    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=500, capacity=500_000, seed=3)
    )
    config = SEConfig(num_threads=5, max_iterations=2_000, convergence_window=2_000, seed=1)

    def run():
        return StochasticExploration(config).solve(workload.instance)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.iterations == 2_000
    stats = benchmark.stats.stats
    # Typical: ~1.5 s. Regression guard at 15 s.
    assert stats.max < 15.0, f"SE race too slow: {stats.max:.1f}s for 2000 rounds"


def test_epoch_protocol_runtime(benchmark):
    """One full 5-stage epoch at 400 nodes on the DES engine."""
    def run():
        simulation = ElasticoSimulation(
            ChainParams(num_nodes=400, committee_size=8, seed=9),
            mvcom_config=MVComConfig(alpha=1.5, capacity=40_000),
        )
        return simulation.run_epoch()

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.final is not None
    stats = benchmark.stats.stats
    # Typical: ~0.3 s. Regression guard at 10 s.
    assert stats.max < 10.0, f"epoch too slow: {stats.max:.1f}s"


def test_workload_generation_runtime(benchmark):
    """Trace + shards + instance for 1000 committees."""
    def run():
        return generate_epoch_workload(
            WorkloadConfig(num_committees=1_000, capacity=1_000_000, seed=4)
        )

    workload = benchmark.pedantic(run, rounds=1, iterations=1)
    assert workload.instance.num_shards == 800
    stats = benchmark.stats.stats
    assert stats.max < 5.0, f"workload generation too slow: {stats.max:.1f}s"
