"""Fig. 8 -- SE convergence under Gamma in {1, 5, 10, 25}.

Paper claims: larger Gamma converges faster per iteration and to a higher
utility; the benefit saturates once Gamma exceeds ~10.
"""

import numpy as np

from repro.harness.experiments import run_fig08_parallel_threads
from repro.harness.report import traces_table, traces_to_rows, write_csv
from repro.harness.textplot import line_plot


def test_fig08_gamma_sweep(benchmark, perf_recorder):
    result = benchmark.pedantic(run_fig08_parallel_threads, rounds=1, iterations=1)

    traces = result["traces"]
    for series, trace in traces.items():
        perf_recorder(f"fig08_{series}", trace=trace)
    print()
    print(line_plot(traces, title=f"Fig. 8: SE convergence, {result['instance']}"))
    print(traces_table(traces, title="Fig. 8 trace checkpoints"))
    write_csv("fig08_traces.csv", traces_to_rows(traces))

    converged = result["converged"]
    gammas = [1, 5, 10, 25]
    final = [converged[f"Gamma={g}"] for g in gammas]

    # 1. Converged utility is (weakly) monotone in Gamma.
    for lower, higher in zip(final, final[1:]):
        assert higher >= 0.995 * lower
    # 2. Gamma=25 strictly beats Gamma=1.
    assert final[-1] > final[0]
    # 3. Faster early convergence with more executors: utility at the
    #    1/8-mark is higher for Gamma=25 than for Gamma=1.
    early = len(traces["Gamma=1"]) // 8
    assert traces["Gamma=25"][early] >= traces["Gamma=1"][early]
    # 4. Saturation: the 10->25 gain does not exceed the 1->10 gain by more
    #    than run-to-run noise (0.1% of the utility scale).
    assert (final[3] - final[2]) <= (final[2] - final[0]) + 0.001 * abs(final[0])
