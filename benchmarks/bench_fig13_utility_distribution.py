"""Fig. 13 -- distribution of converged utilities across trials.

Paper claims: across repeated trials (box plots in the paper), utilities
grow with alpha for every algorithm and SE's distribution sits at/above the
baselines' with comparable spread.
"""

from repro.harness.experiments import run_fig13_utility_distribution
from repro.harness.report import render_table, write_csv


def test_fig13_utility_distribution(benchmark):
    result = benchmark.pedantic(run_fig13_utility_distribution, rounds=1, iterations=1)

    print()
    rows = []
    for panel, algorithms in result["panels"].items():
        for name, stats in algorithms.items():
            rows.append({
                "panel": panel, "algorithm": name,
                "mean": stats["mean"], "std": stats["std"],
                "min": stats["min"], "median": stats["median"], "max": stats["max"],
            })
    print(render_table(rows, title=f"Fig. 13: converged-utility distribution ({result['trials']} trials)"))
    write_csv("fig13_distribution.csv", rows)

    panels = result["panels"]
    alphas = sorted(panels, key=lambda p: float(p.split("=")[1]))
    # 1. Mean utility grows with alpha for every algorithm.
    for algorithm in ("SE", "SA", "DP", "WOA"):
        means = [panels[p][algorithm]["mean"] for p in alphas]
        assert means == sorted(means), (algorithm, means)
    # 2. SE's mean matches or beats every baseline in every panel.
    for panel in alphas:
        se_mean = panels[panel]["SE"]["mean"]
        for name, stats in panels[panel].items():
            assert se_mean >= 0.99 * stats["mean"], (panel, name)
    # 3. SE's worst trial beats WOA's mean (consistently strong, not lucky).
    for panel in alphas:
        assert panels[panel]["SE"]["min"] >= 0.95 * panels[panel]["WOA"]["mean"]
