"""Extension bench: chain-level effect of MVCom scheduling.

Not a figure from the paper -- this measures the paper's *motivating claim*
end-to-end: that a committee-scheduling strategy reduces the cumulative age
of packed transactions (and therefore helps the chain) compared with the
unscheduled Elastico final committee.  Both deployments run the full
5-stage protocol on the DES substrate for several epochs; only the stage-4
scheduler differs.
"""

import numpy as np

from repro.chain import ChainParams, ElasticoSimulation
from repro.chain.final import take_everything
from repro.chain.stats import ChainRunStats, compare_runs
from repro.core import MVComConfig, SEConfig, StochasticExploration
from repro.harness.report import render_table, write_csv

EPOCHS = 3
PARAMS = ChainParams(num_nodes=240, committee_size=8, seed=404)
# ~40% of the typical submitted volume: a contended final block.
MVCOM = MVComConfig(alpha=1.5, capacity=12_000)


def _se_scheduler(instance):
    result = StochasticExploration(
        SEConfig(num_threads=5, max_iterations=1_500, convergence_window=400, seed=11)
    ).solve(instance)
    return result.best_mask


def _run(scheduler) -> ChainRunStats:
    simulation = ElasticoSimulation(PARAMS, mvcom_config=MVCOM, scheduler=scheduler)
    run = ChainRunStats()
    for _ in range(EPOCHS):
        run.add(simulation.run_epoch())
    assert simulation.chain.verify()
    return run


def test_chain_level_scheduling_effect(benchmark):
    def compare():
        return _run(take_everything), _run(_se_scheduler)

    naive, scheduled = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = compare_runs([naive, scheduled], ["arrival-order", "MVCom-SE"])
    print()
    print(render_table(rows, title=f"Chain-level comparison over {EPOCHS} epochs"))
    write_csv("chain_throughput.csv", rows)

    # The scheduler packs fresher shards: lower mean shard age at
    # comparable (or better) confirmed-TX volume.
    assert scheduled.mean_age_s < naive.mean_age_s
    assert scheduled.total_txs >= 0.9 * naive.total_txs
    # Utility (what MVCom optimises) must strictly improve per epoch.
    assert scheduled.throughput_tps >= 0.9 * naive.throughput_tps
