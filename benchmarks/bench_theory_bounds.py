"""Theory benches -- Theorem 1 (mixing time) and Lemma 4 / Theorem 2 (failure).

These regenerate the paper's analytical claims numerically on exactly
enumerable instances: the chain's structure (irreducibility, detailed
balance), the mixing-time sandwich of Theorem 1, and the failure
perturbation bounds of Section V.
"""

from repro.harness.experiments import run_theory_failure, run_theory_mixing_time
from repro.harness.report import render_table, write_csv


def test_theorem1_mixing_time(benchmark):
    result = benchmark.pedantic(run_theory_mixing_time, rounds=1, iterations=1)
    rows = result["rows"]
    print()
    print(render_table(rows, title=f"Theorem 1: mixing-time bounds (epsilon={result['epsilon']})"))
    write_csv("theory_mixing.csv", rows)

    for row in rows:
        # Lemma 2 and Lemma 3 hold exactly on the constructed chain.
        assert row["irreducible"]
        assert row["detailed_balance_residual"] < 1e-9
        # Theorem 1's sandwich contains the measured mixing time.
        assert row["lower_bound_s"] <= row["empirical_tmix_s"] <= row["upper_bound_s"]
    # Remark 2: larger beta mixes slower (empirically).
    times = [row["empirical_tmix_s"] for row in rows]
    assert times == sorted(times)


def test_lemma4_theorem2_failure(benchmark):
    result = benchmark.pedantic(run_theory_failure, rounds=1, iterations=1)
    rows = result["rows"]
    print()
    print(render_table(rows, title="Lemma 4 / Theorem 2: failure perturbation"))
    write_csv("theory_failure.csv", rows)

    space = result["space"]
    # |F \ G| / |F| = 1/2 exactly (the combinatorial core of Lemma 4).
    assert space["removed_fraction"] == 0.5
    assert space["full"] == 2 * space["trimmed"]
    for row in rows:
        assert row["tv_ok"]            # d_TV <= 1/2
        assert row["perturbation_ok"]  # perturbation <= max_g U_g
