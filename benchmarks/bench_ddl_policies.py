"""Ablation bench: DDL policies for the final committee.

The paper leaves the DDL-setting rule open ("the DDL can be set to the
moment when a predefined percentage of committees submit").  This bench
compares three policies on the same submissions — the paper's percentile
rule (our default), a fixed wall-clock timeout, and the adaptive
budgeted-age rule — each followed by the SE scheduler on the window the
policy admits.
"""

import numpy as np

from repro.core.ddl import BudgetedAge, FixedTimeout, PercentileArrival
from repro.core.problem import MVComConfig, build_instance
from repro.core.se import SEConfig, StochasticExploration
from repro.data.workload import WorkloadConfig, generate_epoch_workload
from repro.harness.report import render_table, write_csv

CONFIG = MVComConfig(alpha=1.5, capacity=120_000)


def _schedule_window(shards, decision):
    window = [shards[i] for i in decision.arrived_indices]
    instance = build_instance(window, CONFIG, ddl=decision.ddl)
    result = StochasticExploration(
        SEConfig(num_threads=4, max_iterations=3_000, convergence_window=700, seed=5)
    ).solve(instance)
    return instance, result


def test_ddl_policy_ablation(benchmark):
    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=150, capacity=120_000, seed=33)
    )
    shards = workload.shards
    latencies = [shard.latency for shard in shards]
    tx_counts = [shard.tx_count for shard in shards]
    median_latency = float(np.median(latencies))
    policies = {
        "percentile-80 (paper)": PercentileArrival(0.8),
        "fixed-timeout (median)": FixedTimeout(timeout_s=median_latency),
        "budgeted-age": BudgetedAge(alpha=CONFIG.alpha),
    }

    def run():
        rows = []
        for name, policy in policies.items():
            decision = policy.decide(latencies, tx_counts)
            instance, result = _schedule_window(shards, decision)
            rows.append({
                "policy": name,
                "arrived": len(decision.arrived_indices),
                "ddl_s": round(decision.ddl, 1),
                "utility": round(result.best_utility, 1),
                "txs": result.best_weight,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Ablation: DDL policies (|Ij|=150, C=120K, alpha=1.5)"))
    write_csv("ablation_ddl_policies.csv", rows)

    by_name = {row["policy"]: row for row in rows}
    # A shorter window (fixed median timeout) admits fewer committees and a
    # smaller DDL; the percentile rule waits longer and packs more TXs.
    assert by_name["fixed-timeout (median)"]["arrived"] < by_name["percentile-80 (paper)"]["arrived"]
    assert by_name["fixed-timeout (median)"]["ddl_s"] <= by_name["percentile-80 (paper)"]["ddl_s"]
    # Every policy yields a capacity-feasible schedule.
    for row in rows:
        assert row["txs"] <= CONFIG.capacity
