"""SE execution-engine bench: parallel Γ-scaling, the vectorized kernel,
and the fully-batched Γ×thread race kernel behind ``engine="auto"``.

Three claims from the engine layer (:mod:`repro.core.engine`):

* ``parallel`` distributes Γ replicas across a process pool and stays
  **byte-identical** to serial — asserted hard here (masks, traces,
  iteration counts).  The wall-clock speedup is *recorded*, not asserted:
  shared CI runners routinely expose a single core, where replica
  parallelism cannot pay for its pickling.  ``cpu_count`` rides along in
  the record so a reader can judge the number; the pool size is clamped
  to the core count (the oversubscription bugfix), and both the requested
  and granted sizes are recorded.
* ``vectorized`` batches the race kernel into numpy array ops; its
  single-replica round throughput must beat serial by a wide margin on
  a thread-rich instance.  The ratio is same-machine (both engines timed
  back to back), so a regression floor IS asserted.
* the **batched** configuration races all Γ replicas × all threads in one
  kernel (Γ=25 over 300 committees, every cardinality a thread — the
  fig08-scale shape).  Its round throughput target is ≥10x serial on the
  bench box; the floor asserted here is lower (6x) because foreign
  runners time the numpy side under arbitrary co-tenancy.  ``auto`` must
  pick the batched kernel for this shape, and every ``auto`` pick must be
  no slower than the serial measurement taken in the same process.

Records land in ``BENCH_se_convergence.json`` under ``se_engines``.
"""

import os
import time

import numpy as np

from repro.core.engine import clamp_workers, select_engine
from repro.core.se import SEConfig, StochasticExploration
from repro.data.workload import WorkloadConfig, generate_epoch_workload


def _timed_solve(instance, **config_kwargs):
    solver = StochasticExploration(SEConfig(**config_kwargs))
    started = time.perf_counter()
    result = solver.solve(instance)
    return result, time.perf_counter() - started


def _assert_identical(a, b):
    assert np.array_equal(a.best_mask, b.best_mask)
    assert a.best_utility == b.best_utility
    assert a.iterations == b.iterations
    assert np.array_equal(a.utility_trace, b.utility_trace)
    assert np.array_equal(a.current_trace, b.current_trace)
    assert np.array_equal(a.virtual_time_trace, b.virtual_time_trace)


def test_engine_bench(perf_recorder):
    cpu_count = os.cpu_count() or 1
    granted_workers = clamp_workers(4)

    # ---- parallel: Γ=10 over 100 committees ---------------------------- #
    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=100, capacity=100_000, seed=0)
    )
    parallel_kwargs = dict(
        num_threads=10, max_iterations=600, convergence_window=10 ** 6, seed=0
    )
    # Warm the spawn pool so process startup is amortised out of the timing,
    # exactly as it is across repeated solves in a long experiment.
    _timed_solve(
        workload.instance, engine="parallel", num_workers=4,
        num_threads=10, max_iterations=20, convergence_window=10 ** 6, seed=0,
    )
    serial_res, serial_wall = _timed_solve(
        workload.instance, engine="serial", **parallel_kwargs
    )
    parallel_res, parallel_wall = _timed_solve(
        workload.instance, engine="parallel", num_workers=4, **parallel_kwargs
    )
    _assert_identical(serial_res, parallel_res)
    parallel_speedup = serial_wall / parallel_wall

    # ---- vectorized: single-replica round throughput ------------------ #
    # Thread-rich configuration (300 committees, every cardinality gets a
    # solution thread) over enough rounds to amortise block-draw startup.
    vec_workload = generate_epoch_workload(
        WorkloadConfig(num_committees=300, capacity=300_000, seed=1)
    )
    vec_kwargs = dict(
        num_threads=1, max_iterations=4_000, convergence_window=10 ** 6,
        seed=1, max_solution_threads=None,
    )
    # Warm both paths (allocator, numpy dispatch) before the timed solves.
    for engine in ("serial", "vectorized"):
        _timed_solve(
            vec_workload.instance, engine=engine, num_threads=1,
            max_iterations=200, convergence_window=10 ** 6, seed=1,
            max_solution_threads=None,
        )
    vserial_res, vserial_wall = _timed_solve(
        vec_workload.instance, engine="serial", **vec_kwargs
    )
    vector_res, vector_wall = _timed_solve(
        vec_workload.instance, engine="vectorized", **vec_kwargs
    )
    serial_rounds_per_s = vserial_res.iterations / vserial_wall
    vector_rounds_per_s = vector_res.iterations / vector_wall
    vector_speedup = vector_rounds_per_s / serial_rounds_per_s

    # The vectorized engine is distributional, not byte-identical — but it
    # must land in the same utility neighbourhood after the same budget.
    assert vector_res.best_utility >= 0.97 * vserial_res.best_utility
    # Same-machine ratio: a regression floor well under the ~2.3x observed.
    assert vector_speedup >= 1.5

    # ---- batched: Γ=25 × every cardinality in one kernel -------------- #
    # The fig08-scale shape: 25 replicas racing ~108 threads each (2700
    # rows) through the rectangular argmin.  Serial gets a smaller round
    # budget (it is ~10x slower); both rates are per-round and both solves
    # amortise their spawn/sync fixed costs over the measured rounds.
    batched_gamma = 25
    batched_kwargs = dict(
        num_threads=batched_gamma, convergence_window=10 ** 6, seed=1,
        max_solution_threads=None,
    )
    for engine, iters in (("serial", 60), ("vectorized", 200)):
        _timed_solve(
            vec_workload.instance, engine=engine, max_iterations=iters,
            **batched_kwargs,
        )
    bserial_res, bserial_wall = _timed_solve(
        vec_workload.instance, engine="serial", max_iterations=600,
        **batched_kwargs,
    )
    batched_res, batched_wall = _timed_solve(
        vec_workload.instance, engine="vectorized", max_iterations=4_000,
        **batched_kwargs,
    )
    bserial_rounds_per_s = bserial_res.iterations / bserial_wall
    batched_rounds_per_s = batched_res.iterations / batched_wall
    batched_speedup = batched_rounds_per_s / bserial_rounds_per_s
    assert batched_res.best_utility >= 0.97 * bserial_res.best_utility
    # ≥10x on the bench box; the asserted floor leaves room for noisy
    # shared runners without letting a real regression through.
    assert batched_speedup >= 6.0

    # ---- auto: must pick the batched kernel here, never a loser ------- #
    auto_config = SEConfig(engine="auto", **batched_kwargs)
    # Racing threads per replica: every cardinality in [n_lo, n_hi] has a
    # swappable pair on this instance, so the thread list is the count.
    racing = len(batched_res.thread_cardinalities)
    auto_choice, auto_reason = select_engine(auto_config, racing)
    assert auto_choice == "vectorized", auto_reason
    measured = {
        "serial": bserial_rounds_per_s,
        "vectorized": batched_rounds_per_s,
    }
    # "auto is never slower than serial": the engine auto picked must meet
    # or beat the serial measurement taken seconds ago in this process.
    assert measured[auto_choice] >= measured["serial"]

    print()
    print("SE engine bench")
    print(f"  parallel   Gamma=10, 100 committees, 4 workers requested "
          f"({granted_workers} granted), {cpu_count} cpus")
    print(f"    serial   {serial_wall:7.3f} s")
    print(f"    parallel {parallel_wall:7.3f} s   speedup {parallel_speedup:5.2f}x")
    print("  vectorized Gamma=1, 300 committees, all cardinalities, 4000 rounds")
    print(f"    serial     {serial_rounds_per_s:8.0f} rounds/s")
    print(f"    vectorized {vector_rounds_per_s:8.0f} rounds/s   "
          f"speedup {vector_speedup:5.2f}x")
    print(f"  batched    Gamma={batched_gamma}, 300 committees, all cardinalities")
    print(f"    serial     {bserial_rounds_per_s:8.0f} rounds/s")
    print(f"    batched    {batched_rounds_per_s:8.0f} rounds/s   "
          f"speedup {batched_speedup:5.2f}x   auto picks {auto_choice}")

    perf_recorder(
        "se_engines",
        cpu_count=cpu_count,
        parallel_workers=4,
        parallel_workers_granted=granted_workers,
        parallel_gamma=10,
        parallel_committees=100,
        parallel_serial_wall_s=serial_wall,
        parallel_wall_s=parallel_wall,
        parallel_speedup=parallel_speedup,
        parallel_byte_identical=True,
        vectorized_committees=300,
        vectorized_rounds=int(vector_res.iterations),
        serial_rounds_per_s=serial_rounds_per_s,
        vectorized_rounds_per_s=vector_rounds_per_s,
        vectorized_speedup=vector_speedup,
        batched_gamma=batched_gamma,
        batched_committees=300,
        batched_rounds=int(batched_res.iterations),
        batched_serial_rounds_per_s=bserial_rounds_per_s,
        batched_rounds_per_s=batched_rounds_per_s,
        batched_speedup=batched_speedup,
        auto_choice=auto_choice,
    )
