"""Shared helpers for the figure benches.

Every bench regenerates one paper figure's series via the harness, asserts
the figure's *qualitative shape* (who wins, directions of trends), prints
the series as an aligned table, and writes CSVs under ``results/``.
Absolute values come from our simulator, not the authors' testbed, so no
bench asserts a specific number from the paper.
"""

import pytest


def emit(capsys_or_none, text: str) -> None:
    """Print bench output so ``pytest benchmarks/ -s`` shows the figures."""
    print()
    print(text)


@pytest.fixture(scope="session")
def bench_results():
    """Session-scoped cache so multi-test benches reuse one expensive run."""
    return {}
