"""Shared helpers for the figure benches.

Every bench regenerates one paper figure's series via the harness, asserts
the figure's *qualitative shape* (who wins, directions of trends), prints
the series as an aligned table, and writes CSVs under ``results/``.
Absolute values come from our simulator, not the authors' testbed, so no
bench asserts a specific number from the paper.

Benches can also push SE-solve performance records into the session-scoped
``perf_recorder`` fixture; at session end every record lands in
``BENCH_se_convergence.json`` at the repo root (wall-time per solve,
iteration counts, and the converged-utility statistics from
:func:`repro.metrics.traces.trace_statistics`).
"""

import json
from pathlib import Path

import pytest

#: Repo-root perf log written by :func:`pytest_sessionfinish`.
BENCH_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_se_convergence.json"

_PERF_RECORDS = {}


def emit(capsys_or_none, text: str) -> None:
    """Print bench output so ``pytest benchmarks/ -s`` shows the figures."""
    print()
    print(text)


@pytest.fixture(scope="session")
def bench_results():
    """Session-scoped cache so multi-test benches reuse one expensive run."""
    return {}


@pytest.fixture(scope="session")
def perf_recorder():
    """Collect named SE-solve perf records for ``BENCH_se_convergence.json``.

    Call it as ``perf_recorder(name, wall_s=..., trace=[...], **extra)``;
    the trace is summarised via ``trace_statistics`` so the JSON carries
    converged utility and iteration counts, not raw series.
    """
    from repro.metrics.traces import trace_statistics

    def record(name, wall_s=None, trace=None, **extra):
        entry = dict(extra)
        if wall_s is not None:
            entry["wall_s_per_solve"] = float(wall_s)
        if trace is not None:
            entry.update(trace_statistics(trace))
        _PERF_RECORDS[name] = entry
        return entry

    return record


def pytest_sessionfinish(session, exitstatus):
    """Merge this session's perf records into the repo-root perf log.

    Merging (rather than overwriting) keeps records from benches that were
    not part of this run, so a partial ``pytest benchmarks/bench_x.py``
    invocation cannot clobber the other benches' entries.
    """
    if not _PERF_RECORDS:
        return
    records = {}
    if BENCH_RECORD_PATH.exists():
        try:
            records = json.loads(BENCH_RECORD_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            records = {}
    records.update(_PERF_RECORDS)
    BENCH_RECORD_PATH.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")
