"""Fig. 10 -- Valuable Degree of the four algorithms.

Paper claims: SE shows the highest Valuable Degree; SA is close behind;
DP (and WOA, in the paper's runs) produce clearly lower-value selections.
Our reproduction preserves SE >= SA and the large SE-vs-DP gap; WOA's VD
lands near SA's because its capacity repair keeps many fresh shards (noted
in EXPERIMENTS.md).
"""

from dataclasses import replace

from repro.harness.experiments import run_fig10_valuable_degree
from repro.harness.presets import PRESETS
from repro.harness.report import render_table, write_csv

PRESET = replace(PRESETS["fig10"], seeds=(1, 2, 3))


def test_fig10_valuable_degree(benchmark):
    result = benchmark.pedantic(run_fig10_valuable_degree, args=(PRESET,), rounds=1, iterations=1)

    rows = result["rows"]
    print()
    print(render_table(rows, title="Fig. 10: Valuable Degree (|Ij|=500, C=500K, alpha=1.5, Gamma=25)"))
    write_csv("fig10_valuable_degree.csv", rows)

    vd = {row["algorithm"]: row["valuable_degree_mean"] for row in rows}
    ratios = result["mean_ratio_vs_se"]
    print(render_table(
        [{"algorithm": name, "vd_ratio_vs_SE": round(ratio, 3)} for name, ratio in ratios.items()],
        title="per-trial Valuable Degree relative to SE",
    ))
    # 1. SE attains the highest (or statistically tied-highest) VD.
    assert vd["SE"] >= 0.99 * max(vd.values())
    # 2. SA is close to SE (the paper: "SA has a close performance ... but
    #    with a lower valuable degree").
    assert 0.9 <= ratios["SA"] <= 1.02
    # 3. DP's VD is dramatically lower per trial -- it packs stale heavy
    #    shards (the Fig. 10 headline).
    assert ratios["DP"] < 0.8
