"""Churn-storm throughput: how many armed storms the harness survives per second.

The fault-injection harness is only useful if it is cheap enough to run on
every CI push, so this bench measures **survived storms per second** — one
storm being a full SE solve under a 40-event schedule with every default
invariant armed — and asserts:

1. every storm in the battery survives (or degrades gracefully) — the CI
   acceptance property that the dynamic-path bugfixes hold under churn;
2. the armed probe's cost stays small: a probed solve is at most 1.5x the
   bare solve on the same schedule (the probe only observes at event
   boundaries, never inside the race loop).
"""

import time

import numpy as np

from repro.core.dynamics import DynamicSchedule
from repro.core.se import SEConfig, StochasticExploration
from repro.faultinject import StormConfig, build_storm_instance, generate_storm, run_storm
from repro.sim.rng import RandomStreams

NUM_STORMS = 8
BASE = StormConfig(
    seed=0, num_events=40, num_committees=24, gamma=4,
    max_iterations=500, convergence_window=200,
)


def _battery():
    return [
        StormConfig(
            seed=seed,
            num_events=BASE.num_events,
            num_committees=BASE.num_committees,
            gamma=BASE.gamma,
            max_iterations=BASE.max_iterations,
            convergence_window=BASE.convergence_window,
        )
        for seed in range(NUM_STORMS)
    ]


def test_survived_storms_per_second(perf_recorder):
    configs = _battery()

    started = time.perf_counter()
    outcomes = [run_storm(config) for config in configs]
    wall_s = time.perf_counter() - started

    survived = sum(1 for outcome in outcomes if outcome.status == "survived")
    infeasible = sum(1 for outcome in outcomes if outcome.status == "infeasible")
    violated = [outcome for outcome in outcomes if outcome.status == "violated"]
    assert not violated, f"storms violated invariants: {[o.signature for o in violated]}"
    assert survived > 0

    checks = sum(outcome.checks_run for outcome in outcomes)
    storms_per_s = len(configs) / wall_s

    # Probe overhead: same schedule, bare solve vs armed storm run.
    config = configs[0]
    instance = build_storm_instance(config)
    events = generate_storm(instance, config, RandomStreams(config.seed))
    se_config = SEConfig(
        num_threads=config.gamma,
        max_iterations=config.max_iterations,
        convergence_window=config.convergence_window,
        seed=config.seed,
    )

    def bare():
        StochasticExploration(se_config).solve(
            instance, schedule=DynamicSchedule(events=list(events))
        )

    def armed():
        run_storm(config, events=events)

    bare_s = min(_timed(bare) for _ in range(3))
    armed_s = min(_timed(armed) for _ in range(3))
    overhead = armed_s / bare_s

    print()
    print("churn-storm battery (default invariants armed)")
    print(
        f"  storms: {len(configs)}  survived: {survived}  "
        f"infeasible (graceful): {infeasible}"
    )
    print(f"  boundary checks: {checks}")
    print(
        f"  throughput: {storms_per_s:.2f} survived storms/s "
        f"({wall_s / len(configs) * 1e3:.0f} ms per storm)"
    )
    print(f"  probe overhead: {overhead:.2f}x bare solve")
    perf_recorder(
        "faultinject_storms",
        wall_s=wall_s / len(configs),
        storms=len(configs),
        survived=survived,
        infeasible_graceful=infeasible,
        boundary_checks=checks,
        storms_per_s=round(storms_per_s, 3),
        probe_overhead_x=round(overhead, 3),
    )
    assert overhead < 1.5, f"armed probe costs {overhead:.2f}x the bare solve"


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_storm_results_reproducible_across_battery():
    """Same battery twice -> byte-identical best masks (CI flake guard)."""
    configs = _battery()[:3]
    first = [run_storm(config) for config in configs]
    second = [run_storm(config) for config in configs]
    for a, b in zip(first, second):
        assert a.status == b.status
        if a.result is not None:
            assert np.array_equal(a.result.best_mask, b.result.best_mask)
            assert a.result.best_utility == b.result.best_utility
